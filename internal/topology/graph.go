// Package topology generates GT-ITM-style transit-stub network topologies
// and answers shortest-path latency queries over them.
//
// The package plays the role of the physical Internet in the paper's
// evaluation: overlay nodes are attached to topology hosts, and every RTT
// probe or routing-hop cost resolves to a shortest-path latency between two
// hosts. Transit-stub structure (stub domains hang off transit-domain
// backbones and never carry transit traffic) is exploited to answer latency
// queries in O(1) after a cheap precomputation; a generic Dijkstra over the
// raw graph is kept alongside for validation.
package topology

import (
	"container/heap"
	"fmt"
	"math"
)

// NodeID identifies a host in the physical topology. IDs are dense,
// starting at 0, in generation order.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Arc is one directed half of an undirected weighted edge.
type Arc struct {
	To NodeID
	W  float64 // latency in milliseconds
}

// Graph is an undirected weighted graph with dense NodeIDs. The zero value
// is an empty graph; use NewGraph to preallocate adjacency lists.
type Graph struct {
	adj [][]Arc
}

// NewGraph returns a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge inserts an undirected edge {u, v} with weight w. It returns an
// error on out-of-range endpoints, self-loops, or non-positive weights.
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("topology: self-loop on node %d", u)
	}
	if int(u) < 0 || int(u) >= len(g.adj) || int(v) < 0 || int(v) >= len(g.adj) {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("topology: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.adj[u] = append(g.adj[u], Arc{To: v, W: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, W: w})
	return nil
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []Arc { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Dijkstra computes single-source shortest-path distances from src to every
// node. Unreachable nodes get +Inf.
func (g *Graph) Dijkstra(src NodeID) []float64 {
	dist := make([]float64, len(g.adj))
	var scratch DijkstraScratch
	g.DijkstraInto(src, dist, &scratch)
	return dist
}

// DijkstraScratch holds the priority-queue storage a Dijkstra run needs, so
// callers computing many single-source trees over the same graph (the
// generator's all-pairs precomputation sweeps every backbone and stub node)
// can reuse one allocation instead of regrowing the heap per source. The
// zero value is ready to use. Not safe for concurrent use.
type DijkstraScratch struct {
	pq arcHeap
}

// DijkstraInto computes distances from src into dist, which must have
// length g.Len(); every entry is overwritten (unreachable nodes get +Inf).
// scratch may be nil, in which case the queue is allocated fresh.
func (g *Graph) DijkstraInto(src NodeID, dist []float64, scratch *DijkstraScratch) {
	if len(dist) != len(g.adj) {
		panic(fmt.Sprintf("topology: DijkstraInto dist length %d != node count %d", len(dist), len(g.adj)))
	}
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	if scratch == nil {
		scratch = new(DijkstraScratch)
	}
	// The queue is driven through the non-boxing pushArc/popArc rather than
	// container/heap: heap.Push takes interface{}, which heap-allocates a
	// box per relaxation — the dominant allocation in the generator's
	// all-pairs sweeps.
	pq := &scratch.pq
	*pq = append((*pq)[:0], Arc{To: src, W: 0})
	for len(*pq) > 0 {
		cur := pq.popArc()
		if cur.W > dist[cur.To] {
			continue // stale queue entry
		}
		for _, e := range g.adj[cur.To] {
			if nd := cur.W + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				pq.pushArc(Arc{To: e.To, W: nd})
			}
		}
	}
}

// DijkstraSubset computes shortest-path distances from src restricted to
// the induced subgraph containing exactly the nodes for which allowed
// returns true. src itself must be allowed.
func (g *Graph) DijkstraSubset(src NodeID, allowed func(NodeID) bool) map[NodeID]float64 {
	dist := map[NodeID]float64{src: 0}
	pq := &arcHeap{{To: src, W: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(Arc)
		if d, ok := dist[cur.To]; ok && cur.W > d {
			continue
		}
		for _, e := range g.adj[cur.To] {
			if !allowed(e.To) {
				continue
			}
			nd := cur.W + e.W
			if d, ok := dist[e.To]; !ok || nd < d {
				dist[e.To] = nd
				heap.Push(pq, Arc{To: e.To, W: nd})
			}
		}
	}
	return dist
}

// Connected reports whether the graph is a single connected component.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	seen := make([]bool, len(g.adj))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(g.adj)
}

// arcHeap is a min-heap of Arcs ordered by W, used as the Dijkstra queue
// (To doubles as the node, W as the tentative distance).
type arcHeap []Arc

func (h arcHeap) Len() int            { return len(h) }
func (h arcHeap) Less(i, j int) bool  { return h[i].W < h[j].W }
func (h arcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arcHeap) Push(x interface{}) { *h = append(*h, x.(Arc)) }
func (h *arcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// pushArc and popArc are the same binary-heap sift operations that
// container/heap performs, minus the interface{} boxing of each Arc.

func (h *arcHeap) pushArc(a Arc) {
	s := append(*h, a)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].W <= s[i].W {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

func (h *arcHeap) popArc() Arc {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].W < s[l].W {
			m = r
		}
		if s[i].W <= s[m].W {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
