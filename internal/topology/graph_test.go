package topology

import (
	"math"
	"testing"

	"gsso/internal/simrand"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	cases := []struct {
		name    string
		u, v    NodeID
		w       float64
		wantErr bool
	}{
		{"ok", 0, 1, 1.5, false},
		{"self-loop", 1, 1, 1, true},
		{"out-of-range-hi", 0, 3, 1, true},
		{"out-of-range-lo", -1, 0, 1, true},
		{"zero-weight", 0, 2, 0, true},
		{"negative-weight", 0, 2, -2, true},
		{"nan-weight", 0, 2, math.NaN(), true},
		{"inf-weight", 0, 2, math.Inf(1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.w)
			if (err != nil) != tc.wantErr {
				t.Fatalf("AddEdge(%d,%d,%v) err = %v, wantErr %v", tc.u, tc.v, tc.w, err, tc.wantErr)
			}
		})
	}
}

func TestGraphUndirected(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d,%d", g.Degree(0), g.Degree(1))
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if g.Neighbors(0)[0].To != 1 || g.Neighbors(1)[0].To != 0 {
		t.Fatal("adjacency not mirrored")
	}
}

func TestDijkstraLine(t *testing.T) {
	// 0 -1- 1 -2- 2 -3- 3
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	mustEdge(t, g, 2, 3, 3)
	d := g.Dijkstra(0)
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDijkstraPrefersCheaperLongerPath(t *testing.T) {
	// Direct 0-2 costs 10; 0-1-2 costs 3.
	g := NewGraph(3)
	mustEdge(t, g, 0, 2, 10)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	d := g.Dijkstra(0)
	if d[2] != 3 {
		t.Fatalf("d[2] = %v, want 3", d[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("d[2] = %v, want +Inf", d[2])
	}
}

func TestDijkstraSubset(t *testing.T) {
	// Path 0-1-2 exists but 1 is disallowed; direct 0-2 edge costs 10.
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 0, 2, 10)
	d := g.DijkstraSubset(0, func(id NodeID) bool { return id != 1 })
	if d[2] != 10 {
		t.Fatalf("restricted d[2] = %v, want 10", d[2])
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	mustEdge(t, g, 1, 2, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !NewGraph(0).Connected() {
		t.Fatal("empty graph should be connected")
	}
}

func TestDijkstraSymmetryProperty(t *testing.T) {
	// On random undirected graphs, dist(a,b) == dist(b,a) and the triangle
	// inequality holds for shortest-path metrics.
	rng := simrand.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		g := NewGraph(n)
		for i := 1; i < n; i++ {
			mustEdge(t, g, NodeID(i), NodeID(rng.Intn(i)), rng.Range(0.1, 10))
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(NodeID(u), NodeID(v), rng.Range(0.1, 10)) // dup-tolerant: parallel edges only shorten nothing
			}
		}
		all := make([][]float64, n)
		for i := 0; i < n; i++ {
			all[i] = g.Dijkstra(NodeID(i))
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if math.Abs(all[a][b]-all[b][a]) > 1e-9 {
					t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", a, b, all[a][b], b, a, all[b][a])
				}
				for c := 0; c < n; c++ {
					if all[a][b] > all[a][c]+all[c][b]+1e-9 {
						t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, b, all[a][b], all[a][c], all[c][b])
					}
				}
			}
		}
	}
}

func mustEdge(t *testing.T, g *Graph, u, v NodeID, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}
