package topology

import (
	"fmt"
	"math"

	"gsso/internal/simrand"
)

// Class distinguishes backbone routers from edge hosts.
type Class uint8

// Node classes.
const (
	ClassTransit Class = iota
	ClassStub
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == ClassTransit {
		return "transit"
	}
	return "stub"
}

// Node describes one host of the generated topology.
type Node struct {
	ID     NodeID
	Class  Class
	Domain int // transit domain index
	Stub   int // stub domain index, or -1 for transit nodes
}

// stubDomain holds the precomputed structure of one stub domain. Member
// IDs are contiguous, members[0] is the gateway host that owns the single
// transit-stub uplink.
//
// Intra-stub distances come in two flat representations, chosen at
// generation time by Spec.HubStubThreshold:
//
//   - exact: dist is the dense size×size all-pairs matrix over the stub's
//     random local graph (the paper's presets — O(size²) memory, fine for
//     stubs of tens to hundreds of hosts);
//   - factored: dist is nil and egress holds each host's latency to the
//     stub-local hub (host 0). The stub was wired hub-and-spoke, so
//     d(a,b) = egress[a] + egress[b] is the exact shortest path on the raw
//     graph — O(size) memory, which is what makes million-node topologies
//     fit in RAM (a size² matrix is the dominant RSS term at large
//     NodesPerStub).
//
// Both paths are O(1) per latency query.
type stubDomain struct {
	first     NodeID  // ID of members[0]
	size      int     // number of hosts
	gateway   NodeID  // transit node the stub attaches to
	gwLatency float64 // latency of the transit-stub link
	dist      []float64
	egress    []float64 // factored mode; egress[0] == 0
}

func (s *stubDomain) d(pa, pb int) float64 {
	if s.dist != nil {
		return s.dist[pa*s.size+pb]
	}
	if pa == pb {
		return 0
	}
	// (egress[pa] + egress[pb]) is commutative, so the factored path stays
	// exactly symmetric in its arguments, like the dense matrix.
	return s.egress[pa] + s.egress[pb]
}

// Network is a generated transit-stub topology with O(1) shortest-path
// latency queries. It is immutable after generation and safe for
// concurrent readers.
type Network struct {
	spec         Spec
	graph        *Graph // full graph, kept for validation and inspection
	nodes        []Node
	transitCount int
	transitDist  []float64 // row-major transitCount x transitCount
	stubs        []stubDomain
	edgeCounts   [4]int // per LinkClass
}

// Spec returns the spec the network was generated from.
func (n *Network) Spec() Spec { return n.spec }

// Len returns the total number of hosts.
func (n *Network) Len() int { return len(n.nodes) }

// TransitCount returns the number of backbone routers.
func (n *Network) TransitCount() int { return n.transitCount }

// StubCount returns the number of stub domains.
func (n *Network) StubCount() int { return len(n.stubs) }

// Node returns the descriptor for id.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// StubGateway returns the transit node stub si attaches to and the latency
// of the stub's single uplink.
func (n *Network) StubGateway(si int) (NodeID, float64) {
	s := &n.stubs[si]
	return s.gateway, s.gwLatency
}

// Graph exposes the underlying raw graph (read-only) for validation and
// diagnostics.
func (n *Network) Graph() *Graph { return n.graph }

// EdgeCount returns the number of undirected links of the given class.
func (n *Network) EdgeCount(c LinkClass) int { return n.edgeCounts[c] }

// StubHosts returns the IDs of all stub hosts in increasing order. The
// returned slice is fresh and owned by the caller.
func (n *Network) StubHosts() []NodeID {
	out := make([]NodeID, 0, len(n.nodes)-n.transitCount)
	for id := NodeID(n.transitCount); int(id) < len(n.nodes); id++ {
		out = append(out, id)
	}
	return out
}

// AllHosts returns every node ID, transit and stub. The returned slice is
// fresh and owned by the caller.
func (n *Network) AllHosts() []NodeID {
	out := make([]NodeID, len(n.nodes))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// RandomStubHosts returns k distinct stub hosts drawn uniformly.
func (n *Network) RandomStubHosts(rng *simrand.Source, k int) []NodeID {
	stubTotal := len(n.nodes) - n.transitCount
	idx := rng.Sample(stubTotal, k)
	out := make([]NodeID, k)
	for i, v := range idx {
		out[i] = NodeID(n.transitCount + v)
	}
	return out
}

// stubOf returns (stub index, position within stub) for a stub host.
func (n *Network) stubOf(id NodeID) (int, int) {
	off := int(id) - n.transitCount
	return off / n.spec.NodesPerStub, off % n.spec.NodesPerStub
}

// toTransit returns the compact index of the transit node nearest-attached
// to id and the latency of reaching it. For transit nodes the cost is 0.
func (n *Network) toTransit(id NodeID) (int, float64) {
	if n.nodes[id].Class == ClassTransit {
		return int(id), 0
	}
	si, pos := n.stubOf(id)
	s := &n.stubs[si]
	return int(s.gateway), s.d(pos, 0) + s.gwLatency
}

// Latency returns the shortest-path latency in milliseconds between hosts
// a and b. It exploits transit-stub structure: stubs never carry transit
// traffic and attach to the backbone through a single uplink, so every
// inter-stub path decomposes into stub egress + backbone path + stub
// ingress. Latency(a, a) == 0.
func (n *Network) Latency(a, b NodeID) float64 {
	if a == b {
		return 0
	}
	aStub := n.nodes[a].Class == ClassStub
	bStub := n.nodes[b].Class == ClassStub
	if aStub && bStub {
		sa, pa := n.stubOf(a)
		sb, pb := n.stubOf(b)
		if sa == sb {
			return n.stubs[sa].d(pa, pb)
		}
	}
	ta, ca := n.toTransit(a)
	tb, cb := n.toTransit(b)
	// (ca + cb) first: FP addition is commutative, so the result is exactly
	// symmetric in a and b.
	return (ca + cb) + n.transitDist[ta*n.transitCount+tb]
}

// RTT returns the round-trip time between hosts (twice the one-way
// latency; links are symmetric).
func (n *Network) RTT(a, b NodeID) float64 { return 2 * n.Latency(a, b) }

// Nearest returns the member of candidates closest to a (excluding a
// itself) and the latency to it. It returns (None, +Inf) if candidates
// contains no node other than a.
func (n *Network) Nearest(a NodeID, candidates []NodeID) (NodeID, float64) {
	best := None
	bestD := math.Inf(1)
	for _, c := range candidates {
		if c == a {
			continue
		}
		if d := n.Latency(a, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// SameStub reports whether a and b are stub hosts of the same stub domain.
func (n *Network) SameStub(a, b NodeID) bool {
	if n.nodes[a].Class != ClassStub || n.nodes[b].Class != ClassStub {
		return false
	}
	sa, _ := n.stubOf(a)
	sb, _ := n.stubOf(b)
	return sa == sb
}

// String summarizes the network for logs.
func (n *Network) String() string {
	return fmt.Sprintf("transit-stub{hosts=%d transit=%d stubs=%d edges=%d latency=%s}",
		len(n.nodes), n.transitCount, len(n.stubs), n.graph.EdgeCount(), n.spec.Latency.Name)
}
