package topology

import (
	"math"
	"runtime"
	"testing"

	"gsso/internal/simrand"
)

// hubSpec is a spec whose stubs exceed the hub threshold, forcing the
// factored hub-and-spoke path.
func hubSpec() Spec {
	return Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   1,
		NodesPerStub:          DefaultHubStubThreshold + 44,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.1, // ignored on the hub path, deliberately nonzero
		ExtraInterDomainLinks: 1,
		Latency:               GTITMLatency(),
	}
}

// TestHubStubLatencyMatchesDijkstra extends the load-bearing O(1)-vs-truth
// validation to the factored path: a star-wired stub's egress-sum distance
// must equal true shortest paths on the raw graph, not approximate them.
func TestHubStubLatencyMatchesDijkstra(t *testing.T) {
	if testing.Short() {
		t.Skip("all-pairs Dijkstra on 1200 hosts")
	}
	net := MustGenerate(hubSpec(), simrand.New(11))
	var scratch DijkstraScratch
	truth := make([]float64, net.Len())
	// Sample sources: all transit nodes plus a spread of stub hosts from
	// each stub (full all-pairs over 1200 hosts is wasteful; per-source
	// verification against every destination already covers all pair kinds).
	sources := []NodeID{0, 1, 2, 3}
	for si := 0; si < net.StubCount(); si++ {
		first := NodeID(net.TransitCount() + si*net.Spec().NodesPerStub)
		sources = append(sources, first, first+1, first+57, first+NodeID(net.Spec().NodesPerStub-1))
	}
	for _, src := range sources {
		net.Graph().DijkstraInto(src, truth, &scratch)
		for dst := NodeID(0); int(dst) < net.Len(); dst++ {
			got := net.Latency(src, dst)
			if math.Abs(got-truth[dst]) > 1e-9 {
				t.Fatalf("Latency(%d,%d) = %v, Dijkstra = %v", src, dst, got, truth[dst])
			}
		}
	}
}

func TestHubStubUsesFactoredStorage(t *testing.T) {
	net := MustGenerate(hubSpec(), simrand.New(1))
	for si := 0; si < net.StubCount(); si++ {
		s := &net.stubs[si]
		if s.dist != nil {
			t.Fatalf("stub %d carries a dense matrix on the hub path", si)
		}
		if len(s.egress) != s.size {
			t.Fatalf("stub %d egress len = %d, want %d", si, len(s.egress), s.size)
		}
		if s.egress[0] != 0 {
			t.Fatalf("stub %d hub egress = %v, want 0", si, s.egress[0])
		}
		for i := 1; i < s.size; i++ {
			if s.egress[i] <= 0 {
				t.Fatalf("stub %d egress[%d] = %v, want > 0", si, i, s.egress[i])
			}
		}
	}
}

func TestHubThresholdBoundary(t *testing.T) {
	at := hubSpec()
	at.NodesPerStub = DefaultHubStubThreshold
	net := MustGenerate(at, simrand.New(1))
	if net.stubs[0].dist == nil {
		t.Fatal("stub exactly at threshold should keep the dense path")
	}
	over := hubSpec()
	over.NodesPerStub = DefaultHubStubThreshold + 1
	net = MustGenerate(over, simrand.New(1))
	if net.stubs[0].dist != nil {
		t.Fatal("stub over threshold should take the factored path")
	}
	// Explicit threshold overrides the default.
	low := hubSpec()
	low.NodesPerStub = 10
	low.HubStubThreshold = 5
	net = MustGenerate(low, simrand.New(1))
	if net.stubs[0].dist != nil {
		t.Fatal("explicit HubStubThreshold ignored")
	}
	if err := (Spec{TransitDomains: 1, TransitNodesPerDomain: 1, HubStubThreshold: -1}).Validate(); err == nil {
		t.Fatal("negative HubStubThreshold accepted")
	}
}

func TestScaledWideAndSizedWide(t *testing.T) {
	base := TSKLarge(GTITMLatency())
	wide := base.ScaledWide(3)
	if wide.StubsPerTransitNode != 12 {
		t.Fatalf("ScaledWide StubsPerTransitNode = %d, want 12", wide.StubsPerTransitNode)
	}
	if wide.NodesPerStub != base.NodesPerStub {
		t.Fatal("ScaledWide must not touch stub depth")
	}
	if base.ScaledWide(0.001).StubsPerTransitNode != 1 {
		t.Fatal("ScaledWide floor of 1 violated")
	}

	sized := base.SizedWide(100_000)
	if got := sized.TotalNodes(); got < 100_000 || got > 110_000 {
		t.Fatalf("SizedWide(1e5) yields %d nodes, want [100000,110000]", got)
	}
	if sized.NodesPerStub != base.NodesPerStub {
		t.Fatal("SizedWide must preserve stub density")
	}
	tiny := base.SizedWide(1)
	if tiny.StubsPerTransitNode != 1 {
		t.Fatalf("SizedWide floor = %d stubs, want 1", tiny.StubsPerTransitNode)
	}
	// Stubless spec passes through untouched.
	stubless := Spec{TransitDomains: 1, TransitNodesPerDomain: 2, Latency: ManualLatency()}
	if stubless.SizedWide(100).StubsPerTransitNode != 0 {
		t.Fatal("SizedWide mutated a stubless spec")
	}
}

// TestGenerateAllocBudget is the regression gate for the quadratic
// stubDomain.dist fix: generating a ~10^5-host topology must stay under a
// fixed allocation budget. Before the factored path, a single 1000-host
// stub's matrix alone was 8 MB (size² float64s), and a wide 10^5 topology
// allocated gigabytes across its stubs plus per-pair dedup maps; the flat
// layout keeps the whole generate under 128 MB cumulative.
func TestGenerateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 10^5-node topology")
	}
	spec := TSKLarge(GTITMLatency()).Scaled(10) // 400 hosts/stub -> hub path
	spec.StubsPerTransitNode = 4
	if n := spec.TotalNodes(); n < 100_000 {
		t.Fatalf("spec yields %d nodes, want >= 1e5", n)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	net := MustGenerate(spec, simrand.New(1))
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	const budget = 128 << 20
	if alloc > budget {
		t.Fatalf("generating %d nodes allocated %d MB cumulative, budget %d MB",
			net.Len(), alloc>>20, budget>>20)
	}
	if net.Len() != spec.TotalNodes() {
		t.Fatalf("Len = %d, want %d", net.Len(), spec.TotalNodes())
	}
	// The latency path must stay O(1) and well-formed at this scale.
	hosts := net.RandomStubHosts(simrand.New(2), 64)
	for _, a := range hosts {
		for _, b := range hosts {
			d := net.Latency(a, b)
			if a != b && (d <= 0 || math.IsInf(d, 0) || math.IsNaN(d)) {
				t.Fatalf("Latency(%d,%d) = %v", a, b, d)
			}
			if d != net.Latency(b, a) {
				t.Fatalf("asymmetric latency at scale (%d,%d)", a, b)
			}
		}
	}
}
