package topology

import (
	"fmt"

	"gsso/internal/simrand"
)

// LinkClass distinguishes the four kinds of links in a transit-stub
// topology; each class draws its latency from its own distribution.
type LinkClass uint8

// Link classes, in decreasing typical latency order.
const (
	LinkCrossTransit LinkClass = iota // transit node <-> transit node, different domains
	LinkIntraTransit                  // transit node <-> transit node, same domain
	LinkTransitStub                   // transit node <-> stub gateway
	LinkIntraStub                     // stub node <-> stub node, same stub domain
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case LinkCrossTransit:
		return "cross-transit"
	case LinkIntraTransit:
		return "intra-transit"
	case LinkTransitStub:
		return "transit-stub"
	case LinkIntraStub:
		return "intra-stub"
	default:
		return fmt.Sprintf("LinkClass(%d)", uint8(c))
	}
}

// Dist is a uniform latency distribution over [Lo, Hi) milliseconds.
// Lo == Hi yields the constant Lo.
type Dist struct {
	Lo, Hi float64
}

// Draw samples the distribution.
func (d Dist) Draw(rng *simrand.Source) float64 {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return rng.Range(d.Lo, d.Hi)
}

// Const returns a constant distribution.
func Const(v float64) Dist { return Dist{Lo: v, Hi: v} }

// LatencyModel assigns per-class link latencies.
type LatencyModel struct {
	Name         string
	CrossTransit Dist
	IntraTransit Dist
	TransitStub  Dist
	IntraStub    Dist
}

// For returns the distribution for a link class.
func (m LatencyModel) For(c LinkClass) Dist {
	switch c {
	case LinkCrossTransit:
		return m.CrossTransit
	case LinkIntraTransit:
		return m.IntraTransit
	case LinkTransitStub:
		return m.TransitStub
	default:
		return m.IntraStub
	}
}

// GTITMLatency mimics GT-ITM's randomly weighted links: each class draws
// uniformly from a range whose scale reflects geographic extent (backbone
// links span continents, stub links span campuses). The exact ranges are
// paper-reconstructed (the supplied text lost its digits); only the
// ordering cross-transit >> intra-transit > intra-stub > transit-stub
// matters for result shapes.
func GTITMLatency() LatencyModel {
	return LatencyModel{
		Name:         "gtitm",
		CrossTransit: Dist{Lo: 10, Hi: 50},
		IntraTransit: Dist{Lo: 2, Hi: 20},
		TransitStub:  Dist{Lo: 0.5, Hi: 4},
		IntraStub:    Dist{Lo: 0.5, Hi: 4},
	}
}

// ManualLatency is the paper's second setting, with fixed per-class
// latencies: 20 ms cross-transit, 5 ms intra-transit, 0.5 ms transit-stub,
// 1 ms intra-stub (values paper-reconstructed; see DESIGN.md §3).
func ManualLatency() LatencyModel {
	return LatencyModel{
		Name:         "manual",
		CrossTransit: Const(20),
		IntraTransit: Const(5),
		TransitStub:  Const(0.5),
		IntraStub:    Const(1),
	}
}

// Spec describes a transit-stub topology to generate.
type Spec struct {
	// TransitDomains is the number of transit (backbone) domains.
	TransitDomains int
	// TransitNodesPerDomain is the number of transit nodes per domain.
	TransitNodesPerDomain int
	// StubsPerTransitNode is the number of stub domains attached to each
	// transit node.
	StubsPerTransitNode int
	// NodesPerStub is the number of hosts in each stub domain.
	NodesPerStub int
	// ExtraTransitEdgeProb is the probability of each possible extra
	// intra-transit-domain edge beyond the connectivity spanning tree.
	ExtraTransitEdgeProb float64
	// ExtraStubEdgeProb is the same for intra-stub edges.
	ExtraStubEdgeProb float64
	// ExtraInterDomainLinks is the number of extra random cross-domain
	// backbone links added beyond the inter-domain spanning tree.
	ExtraInterDomainLinks int
	// Latency assigns link latencies.
	Latency LatencyModel
	// HubStubThreshold bounds the per-stub all-pairs distance matrix:
	// stubs with more than this many hosts are generated hub-and-spoke
	// (every host wired straight to the stub's gateway host), so their
	// intra-stub distances factor into one egress latency per host —
	// O(size) memory instead of the O(size²) matrix that dominates RSS at
	// million-node scale. Stubs at or under the threshold keep the exact
	// random-graph wiring and dense matrix of the paper's presets. Zero
	// selects DefaultHubStubThreshold; both preset sizes (40 and 160) stay
	// under any sane threshold, so preset topologies are bit-identical to
	// the pre-threshold implementation.
	HubStubThreshold int
}

// DefaultHubStubThreshold is the stub size above which generation switches
// to the factored hub-and-spoke layout. 256 keeps both paper presets
// (tsk-large: 40 hosts/stub, tsk-small: 160) on the exact dense path.
const DefaultHubStubThreshold = 256

// hubThreshold resolves the effective threshold.
func (s Spec) hubThreshold() int {
	if s.HubStubThreshold == 0 {
		return DefaultHubStubThreshold
	}
	return s.HubStubThreshold
}

// Validate reports whether the spec is generateable.
func (s Spec) Validate() error {
	switch {
	case s.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains = %d, need >= 1", s.TransitDomains)
	case s.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: TransitNodesPerDomain = %d, need >= 1", s.TransitNodesPerDomain)
	case s.StubsPerTransitNode < 0:
		return fmt.Errorf("topology: StubsPerTransitNode = %d, need >= 0", s.StubsPerTransitNode)
	case s.NodesPerStub < 1 && s.StubsPerTransitNode > 0:
		return fmt.Errorf("topology: NodesPerStub = %d, need >= 1", s.NodesPerStub)
	case s.ExtraTransitEdgeProb < 0 || s.ExtraTransitEdgeProb > 1:
		return fmt.Errorf("topology: ExtraTransitEdgeProb = %v, need in [0,1]", s.ExtraTransitEdgeProb)
	case s.ExtraStubEdgeProb < 0 || s.ExtraStubEdgeProb > 1:
		return fmt.Errorf("topology: ExtraStubEdgeProb = %v, need in [0,1]", s.ExtraStubEdgeProb)
	case s.ExtraInterDomainLinks < 0:
		return fmt.Errorf("topology: ExtraInterDomainLinks = %d, need >= 0", s.ExtraInterDomainLinks)
	case s.HubStubThreshold < 0:
		return fmt.Errorf("topology: HubStubThreshold = %d, need >= 0", s.HubStubThreshold)
	}
	return nil
}

// TotalNodes returns the number of hosts the spec generates.
func (s Spec) TotalNodes() int {
	transit := s.TransitDomains * s.TransitNodesPerDomain
	return transit + transit*s.StubsPerTransitNode*s.NodesPerStub
}

// TotalStubs returns the number of stub domains.
func (s Spec) TotalStubs() int {
	return s.TransitDomains * s.TransitNodesPerDomain * s.StubsPerTransitNode
}

// TSKLarge is the paper's tsk-large topology: a large backbone (8 transit
// domains x 8 transit nodes) with sparse stubs (4 stubs per transit node,
// 40 hosts each) — about 10,300 hosts. It models an overlay whose members
// are scattered across the whole Internet. Counts are paper-reconstructed
// (DESIGN.md §3).
func TSKLarge(latency LatencyModel) Spec {
	return Spec{
		TransitDomains:        8,
		TransitNodesPerDomain: 8,
		StubsPerTransitNode:   4,
		NodesPerStub:          40,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.1,
		ExtraInterDomainLinks: 8,
		Latency:               latency,
	}
}

// TSKSmall is the paper's tsk-small topology: a small backbone (2 transit
// domains) with dense stubs (160 hosts each) — about 10,300 hosts. It
// models an overlay with many members per edge network.
func TSKSmall(latency LatencyModel) Spec {
	return Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 8,
		StubsPerTransitNode:   4,
		NodesPerStub:          160,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.1,
		ExtraInterDomainLinks: 2,
		Latency:               latency,
	}
}

// Scaled returns a copy of the spec with NodesPerStub scaled by f (minimum
// one host per stub). It is used by the -quick experiment mode to shrink
// topologies while preserving their transit/stub character.
func (s Spec) Scaled(f float64) Spec {
	out := s
	n := int(float64(s.NodesPerStub)*f + 0.5)
	if n < 1 {
		n = 1
	}
	out.NodesPerStub = n
	return out
}

// ScaledWide returns a copy of the spec with StubsPerTransitNode scaled by
// f (minimum one stub per transit node). Where Scaled deepens each stub,
// ScaledWide multiplies the number of edge networks — the realistic way an
// internet grows — so stub density, and with it the preset's landmark
// behavior, is preserved at any total size. The ext-scale experiment uses
// it to push preset-shaped topologies to 10^5–10^6 hosts.
func (s Spec) ScaledWide(f float64) Spec {
	out := s
	n := int(float64(s.StubsPerTransitNode)*f + 0.5)
	if n < 1 {
		n = 1
	}
	out.StubsPerTransitNode = n
	return out
}

// SizedWide returns the spec wide-scaled so TotalNodes is as close as
// possible to (and at least) targetNodes, holding the backbone and stub
// density fixed.
func (s Spec) SizedWide(targetNodes int) Spec {
	transit := s.TransitDomains * s.TransitNodesPerDomain
	perStubNode := transit * s.NodesPerStub
	if perStubNode <= 0 {
		return s
	}
	want := targetNodes - transit
	stubs := (want + perStubNode - 1) / perStubNode
	if stubs < 1 {
		stubs = 1
	}
	out := s
	out.StubsPerTransitNode = stubs
	return out
}
