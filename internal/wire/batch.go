package wire

import (
	"fmt"
	"sync"
	"time"

	"gsso/internal/obs/span"
)

// maxBatchRecords caps one MsgPublishBatch frame; a fuller queue flushes
// immediately instead of waiting out the window.
const maxBatchRecords = 64

// batcher coalesces soft-state publishes and refreshes headed for the
// same ring owner into MsgPublishBatch frames. Records enqueue per
// owner; a background loop flushes every batch window, a full queue
// flushes inline, and Flush drains everything synchronously — the
// Withdraw/Close path calls it so a drain never abandons pending
// records.
type batcher struct {
	n      *Node
	window time.Duration

	mu      sync.Mutex
	pending map[string][]Record
}

func newBatcher(n *Node, window time.Duration) *batcher {
	return &batcher{n: n, window: window, pending: make(map[string][]Record)}
}

// loop flushes pending batches every window until the node stops.
func (b *batcher) loop() {
	defer b.n.wg.Done()
	ticker := time.NewTicker(b.window)
	defer ticker.Stop()
	for {
		select {
		case <-b.n.stop:
			return
		case <-ticker.C:
			b.Flush(b.n.opt.batchTimeout)
		}
	}
}

// Enqueue queues one record for owner. A queue at capacity is flushed
// inline on the calling goroutine.
func (b *batcher) Enqueue(owner string, rec Record) {
	b.mu.Lock()
	b.pending[owner] = append(b.pending[owner], rec)
	var full []Record
	if len(b.pending[owner]) >= maxBatchRecords {
		full = b.pending[owner]
		delete(b.pending, owner)
	}
	b.mu.Unlock()
	if full != nil {
		b.send(owner, full, b.n.opt.batchTimeout)
	}
}

// Pending reports how many records are queued across all owners.
func (b *batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, recs := range b.pending {
		total += len(recs)
	}
	return total
}

// Flush synchronously sends every pending batch.
func (b *batcher) Flush(timeout time.Duration) {
	b.mu.Lock()
	batches := b.pending
	b.pending = make(map[string][]Record)
	b.mu.Unlock()
	for owner, recs := range batches {
		b.send(owner, recs, timeout)
	}
}

// send ships one batch and accounts the outcome: per-record errors from
// a partially failed batch and whole-frame failures both land in
// wire_batch_errors_total; soft-state heals the lost records on the next
// refresh tick either way. Each flushed frame roots its own trace (a
// frame coalesces records from many enqueuers, so no single publish can
// parent it).
func (b *batcher) send(owner string, recs []Record, timeout time.Duration) {
	n := b.n
	root := n.opt.spans.StartRoot("publish-batch")
	n.metrics.batchSize.Observe(float64(len(recs)))
	errs, err := n.sendBatchCtx(root.Context(), owner, recs, timeout)
	root.Finish(span.Outcome(err), 0, err)
	if err != nil {
		n.metrics.batchErrors.Add(float64(len(recs)))
		n.opt.logger.Debug("wire: batch flush failed",
			"node", n.addr, "owner", owner, "records", len(recs), "err", err)
		return
	}
	failed := 0
	for i, e := range errs {
		if e == "" {
			continue
		}
		failed++
		n.opt.logger.Debug("wire: batch record rejected",
			"node", n.addr, "owner", owner, "record", recs[i].Addr, "err", e)
	}
	n.metrics.batchRecords.Add(float64(len(recs) - failed))
	if failed > 0 {
		n.metrics.batchErrors.Add(float64(failed))
	}
}

// sendBatch ships recs to owner in one MsgPublishBatch frame through the
// breaker + retry machinery. It returns the per-record errors (nil when
// every record stored; otherwise one entry per record, empty = stored)
// and the transport-level error when the frame itself failed.
func (n *Node) sendBatch(owner string, recs []Record, timeout time.Duration) ([]string, error) {
	return n.sendBatchCtx(span.Context{}, owner, recs, timeout)
}

func (n *Node) sendBatchCtx(parent span.Context, owner string, recs []Record, timeout time.Duration) ([]string, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	var errs []string
	err := n.call(MsgPublishBatch, owner, parent, func(tc *span.Context) error {
		resp, err := n.tr.RoundTrip(owner, Message{Type: MsgPublishBatch, Records: recs, Trace: tc}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgBatchAck {
			return permanent(fmt.Errorf("wire: unexpected response %q to publish-batch", resp.Type))
		}
		errs = resp.Errs
		return nil
	})
	if err != nil {
		return nil, err
	}
	if errs != nil && len(errs) != len(recs) {
		return nil, fmt.Errorf("wire: batch ack carries %d errors for %d records", len(errs), len(recs))
	}
	return errs, nil
}
