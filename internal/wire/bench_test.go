package wire

import (
	"testing"
	"time"
)

// Serve/dial fast-path benchmarks: the resilience layer (retry wrapper,
// breaker check) must not measurably slow the no-fault path. Compare
// PingDirect (bare package helper, single attempt) against PingResilient
// (node-side call through breaker + retry machinery) — the two should sit
// within noise of each other, since a healthy call takes the first
// attempt with no backoff and one mutex-guarded breaker check.

func benchTargets(b *testing.B) (*Node, *Node) {
	b.Helper()
	server, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server.Close() })
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return server, client
}

func BenchmarkPingDirect(b *testing.B) {
	server, _ := benchTargets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ping(server.Addr(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingResilient(b *testing.B) {
	server, client := benchTargets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ping(server.Addr(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeQuery(b *testing.B) {
	server, _ := benchTargets(b)
	rec := Record{Addr: "x:1", Number: 12, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	if err := Store(server.Addr(), rec, time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(server.Addr(), 12, 4, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReplicated(b *testing.B) {
	// Full Publish path minus measurement: store one record at both ring
	// owners, the k=2 soft-state write amplification.
	server, client := benchTargets(b)
	server2, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server2.Close() })
	rec := Record{Addr: client.Addr(), Number: 5, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	owners := []string{server.Addr(), server2.Addr()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range owners {
			if err := client.store(o, rec, time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
}
