package wire

import (
	"testing"
	"time"
)

// Serve/dial fast-path benchmarks: the resilience layer (retry wrapper,
// breaker check) must not measurably slow the no-fault path. Compare
// PingDirect (bare package helper, single attempt) against PingResilient
// (node-side call through breaker + retry machinery) — the two should sit
// within noise of each other, since a healthy call takes the first
// attempt with no backoff and one mutex-guarded breaker check.

func benchTargets(b *testing.B) (*Node, *Node) {
	b.Helper()
	server, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server.Close() })
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return server, client
}

func BenchmarkPingDirect(b *testing.B) {
	server, _ := benchTargets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ping(server.Addr(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingResilient(b *testing.B) {
	server, client := benchTargets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ping(server.Addr(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeQuery(b *testing.B) {
	server, _ := benchTargets(b)
	rec := Record{Addr: "x:1", Number: 12, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	if err := Store(server.Addr(), rec, time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(server.Addr(), 12, 4, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// reportPoolMetrics attaches the transport's pooling behavior to a
// benchmark result: conns/op (new dials per operation — ~0 at steady
// state for a pooled transport, ~1 for dial-per-RPC) and reuse-ratio
// (fraction of calls served on an already-open connection).
func reportPoolMetrics(b *testing.B, n *Node, dialsBefore, reuseBefore float64) {
	b.Helper()
	snap := n.Registry().Snapshot()
	dials, _ := snap.Value("wire_conn_dials_total")
	reuse, _ := snap.Value("wire_conn_reuse_total")
	dials -= dialsBefore
	reuse -= reuseBefore
	b.ReportMetric(dials/float64(b.N), "conns/op")
	if dials+reuse > 0 {
		b.ReportMetric(reuse/(dials+reuse), "reuse-ratio")
	}
}

func poolCounters(n *Node) (dials, reuse float64) {
	snap := n.Registry().Snapshot()
	dials, _ = snap.Value("wire_conn_dials_total")
	reuse, _ = snap.Value("wire_conn_reuse_total")
	return dials, reuse
}

// BenchmarkStoreDialPerRPC is the pre-pool baseline: every store pays a
// fresh TCP dial. Kept as the comparison point for BENCH_wire.json.
func BenchmarkStoreDialPerRPC(b *testing.B) {
	server, _ := benchTargets(b)
	rec := Record{Addr: "x:1", Number: 12, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Store(server.Addr(), rec, time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "conns/op")
	b.ReportMetric(0, "reuse-ratio")
}

// BenchmarkStorePooled is the same store through the persistent
// transport: steady-state conns/op must sit at ~0.
func BenchmarkStorePooled(b *testing.B) {
	server, client := benchTargets(b)
	rec := Record{Addr: "x:1", Number: 12, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	// Warm the pool so the handful of initial dials is not billed to ops.
	if err := client.store(server.Addr(), rec, time.Second); err != nil {
		b.Fatal(err)
	}
	dials, reuse := poolCounters(client)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.store(server.Addr(), rec, time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPoolMetrics(b, client, dials, reuse)
}

// BenchmarkPingPooled measures the pooled RTT path that feeds landmark
// vectors: round trip on an established connection, no dial in the loop.
func BenchmarkPingPooled(b *testing.B) {
	server, client := benchTargets(b)
	if _, err := client.ping(server.Addr(), time.Second); err != nil {
		b.Fatal(err)
	}
	dials, reuse := poolCounters(client)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ping(server.Addr(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPoolMetrics(b, client, dials, reuse)
}

// BenchmarkPublishBatch64 ships a full 64-record batch frame per op —
// the coalesced refresh path, 64 logical publishes on one round trip.
func BenchmarkPublishBatch64(b *testing.B) {
	server, client := benchTargets(b)
	exp := time.Now().Add(time.Hour).UnixMilli()
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{Addr: "x:1", Number: uint64(i), ExpiresUnixMilli: exp}
	}
	if _, err := client.sendBatch(server.Addr(), recs, time.Second); err != nil {
		b.Fatal(err)
	}
	dials, reuse := poolCounters(client)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.sendBatch(server.Addr(), recs, time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPoolMetrics(b, client, dials, reuse)
}

func BenchmarkStoreReplicated(b *testing.B) {
	// Full Publish path minus measurement: store one record at both ring
	// owners, the k=2 soft-state write amplification.
	server, client := benchTargets(b)
	server2, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server2.Close() })
	rec := Record{Addr: client.Addr(), Number: 5, ExpiresUnixMilli: time.Now().Add(time.Hour).UnixMilli()}
	owners := []string{server.Addr(), server2.Addr()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range owners {
			if err := client.store(o, rec, time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
}
