package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
)

// Codec versions. Version 1 is the original newline-delimited JSON
// framing; version 2 is the compact length-prefixed binary framing.
// Readers auto-detect the codec of every incoming frame by its first
// byte (binary frames open with binMagic, JSON frames with '{'), so a
// connection can carry a mix — which is exactly what rollout looks
// like: a client advertises CodecBinary in the Codec field of its
// JSON requests, a binary-capable server echoes the advertisement in
// its JSON reply, and the client switches the connection to binary
// from the next frame on. Peers that predate the binary codec ignore
// the unknown field and never echo it, so mixed fleets interoperate
// with zero configuration.
const (
	CodecJSON   uint8 = 1
	CodecBinary uint8 = 2
)

// connReadBufSize sizes the bufio readers of persistent connections.
// Binary frames that fit the buffer decode straight out of it
// (Peek/Discard, no copy), so the buffer is sized to hold a full
// 64-record publish batch with headroom.
const connReadBufSize = 64 << 10

// binMagic opens every binary frame. It can never open a JSON frame
// (those start with '{' = 0x7B or whitespace), so a reader peeking one
// byte classifies the frame unambiguously.
const binMagic = 0xBF

// binHeaderLen is the fixed binary frame header:
//
//	offset size field
//	0      1    magic (0xBF)
//	1      1    codec version (2)
//	2      1    message type code
//	3      1    flags (bit0 record, bit1 trace, bit2 stats)
//	4      4    payload length, uint32 LE (bytes after the header)
//	8      8    seq, uint64 LE
//
// The payload encodes the remaining fields in fixed order: codec
// advertisement (uvarint), number (uvarint), max (zigzag varint), addr
// (string), err (string), record (if flagged), records (uvarint count +
// records), errs (uvarint count + strings), trace (8+8+1 bytes, if
// flagged), stats (uvarint length + JSON bytes, if flagged), membership
// (epoch uvarint + uvarint peer count + strings, if flagged). Strings
// are uvarint length + raw bytes; records are addr, number (uvarint),
// expires (int64 LE), vector (uvarint count + float64 LE each).
const binHeaderLen = 16

// Binary header flags: presence bits for the pointer-typed fields,
// where nil versus zero-valued matters. binFlagMembership covers the
// Peers/Epoch pair carried by peers-reply frames; pre-membership
// decoders never see it set by old senders, and frames without it
// decode exactly as before.
const (
	binFlagRecord     = 1 << 0
	binFlagTrace      = 1 << 1
	binFlagStats      = 1 << 2
	binFlagMembership = 1 << 3
)

// msgTypeCode maps message types to their binary type codes. A type
// missing here (only possible for hand-built messages) falls back to
// JSON framing, which every reader accepts per frame.
var msgTypeCode = map[MsgType]byte{
	MsgPing:         1,
	MsgPong:         2,
	MsgStore:        3,
	MsgStored:       4,
	MsgQuery:        5,
	MsgRecords:      6,
	MsgStats:        7,
	MsgStatsReply:   8,
	MsgRemove:       9,
	MsgRemoved:      10,
	MsgPublishBatch: 11,
	MsgBatchAck:     12,
	MsgError:        13,
	MsgPeers:        14,
	MsgPeersReply:   15,
}

// msgTypeByCode is the reverse mapping; index 0 stays empty.
var msgTypeByCode = [...]MsgType{
	1: MsgPing, 2: MsgPong, 3: MsgStore, 4: MsgStored, 5: MsgQuery,
	6: MsgRecords, 7: MsgStats, 8: MsgStatsReply, 9: MsgRemove,
	10: MsgRemoved, 11: MsgPublishBatch, 12: MsgBatchAck, 13: MsgError,
	14: MsgPeers, 15: MsgPeersReply,
}

// appendUvarint/appendString/appendF64 are the payload field writers.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendRecord(buf []byte, r *Record) []byte {
	buf = appendString(buf, r.Addr)
	buf = binary.AppendUvarint(buf, r.Number)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ExpiresUnixMilli))
	buf = binary.AppendUvarint(buf, uint64(len(r.Vector)))
	for _, v := range r.Vector {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// appendMessageBinary appends m as one binary frame and reports whether
// the message was representable (unknown message types and
// unmarshalable stats snapshots are not — the caller falls back to JSON
// framing, which any reader auto-detects).
func appendMessageBinary(buf []byte, m *Message) ([]byte, bool) {
	code, ok := msgTypeCode[m.Type]
	if !ok {
		return buf, false
	}
	var statsJSON []byte
	if m.Stats != nil {
		b, err := json.Marshal(m.Stats)
		if err != nil {
			return buf, false
		}
		statsJSON = b
	}
	var flags byte
	if m.Record != nil {
		flags |= binFlagRecord
	}
	if m.Trace != nil {
		flags |= binFlagTrace
	}
	if statsJSON != nil {
		flags |= binFlagStats
	}
	if m.Epoch != 0 || len(m.Peers) > 0 {
		flags |= binFlagMembership
	}
	start := len(buf)
	buf = append(buf, binMagic, CodecBinary, code, flags)
	buf = append(buf, 0, 0, 0, 0) // payload length, patched below
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)

	buf = binary.AppendUvarint(buf, uint64(m.Codec))
	buf = binary.AppendUvarint(buf, m.Number)
	buf = binary.AppendVarint(buf, int64(m.Max))
	buf = appendString(buf, m.Addr)
	buf = appendString(buf, m.Err)
	if m.Record != nil {
		buf = appendRecord(buf, m.Record)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Records)))
	for i := range m.Records {
		buf = appendRecord(buf, &m.Records[i])
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Errs)))
	for _, e := range m.Errs {
		buf = appendString(buf, e)
	}
	if m.Trace != nil {
		buf = binary.LittleEndian.AppendUint64(buf, m.Trace.TraceID)
		buf = binary.LittleEndian.AppendUint64(buf, m.Trace.SpanID)
		var s byte
		if m.Trace.Sampled {
			s = 1
		}
		buf = append(buf, s)
	}
	if statsJSON != nil {
		buf = binary.AppendUvarint(buf, uint64(len(statsJSON)))
		buf = append(buf, statsJSON...)
	}
	if flags&binFlagMembership != 0 {
		buf = binary.AppendUvarint(buf, m.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(m.Peers)))
		for _, p := range m.Peers {
			buf = appendString(buf, p)
		}
	}
	binary.LittleEndian.PutUint32(buf[start+4:start+8], uint32(len(buf)-start-binHeaderLen))
	return buf, true
}

// decodeState is the per-connection decode context: the frame scratch
// buffer, the codec of the last frame read, a bounded intern table that
// deduplicates record addresses (a refresh-heavy peer re-sends the same
// handful of addresses forever — steady state allocates no strings),
// and, for server-side loops that never retain a request past its
// response, a reusable records slice.
type decodeState struct {
	scratch []byte
	codec   uint8
	intern  map[string]string
	// reuseRecords lets decode hand back the same []Record backing
	// array frame after frame. Only the node's serve loop sets it: the
	// request is fully consumed before the next frame is read. Client
	// read loops leave it false — responses outlive the loop iteration.
	reuseRecords bool
	recs         []Record
}

// internCap bounds the intern table against peers that spray unique
// addresses; past the cap, strings are allocated but not cached.
const internCap = 4096

func (st *decodeState) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := st.intern[string(b)]; ok { // no alloc: compiler-optimized lookup
		return s
	}
	s := string(b)
	if len(st.intern) < internCap {
		if st.intern == nil {
			st.intern = make(map[string]string)
		}
		st.intern[s] = s
	}
	return s
}

// binReader is a bounds-checked cursor over one binary payload.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary frame: truncated %s", what)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u64(what string) uint64 {
	b := r.bytes(8, what)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) stringField(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(what)
		return ""
	}
	return string(r.bytes(int(n), what))
}

// internedString is stringField through the connection's intern table:
// addresses repeat endlessly on refresh traffic, so steady state
// allocates no string at all.
func (r *binReader) internedString(st *decodeState, what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(what)
		return ""
	}
	return st.internString(r.bytes(int(n), what))
}

// remaining reports the unread payload bytes, used to validate counts
// before allocating.
func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) record(rec *Record, st *decodeState) {
	rec.Addr = r.internedString(st, "record addr")
	rec.Number = r.uvarint("record number")
	rec.ExpiresUnixMilli = int64(r.u64("record expires"))
	vn := r.uvarint("record vector count")
	if r.err != nil {
		return
	}
	if vn > uint64(r.remaining())/8 {
		r.fail("record vector")
		return
	}
	if vn > 0 {
		// The vector backing is always fresh: stored records keep it.
		rec.Vector = make([]float64, vn)
		for i := range rec.Vector {
			rec.Vector[i] = math.Float64frombits(r.u64("record vector"))
		}
	} else {
		rec.Vector = nil
	}
}

// minBinRecordLen is the smallest encodable record (empty addr, zero
// number, expires, empty vector) — used to bound count fields.
const minBinRecordLen = 1 + 1 + 8 + 1

// decodeMessageBinary parses one whole binary frame (header included).
// Everything referenced by the returned Message is copied out of frame,
// so callers may reuse or discard the buffer immediately.
func decodeMessageBinary(frame []byte, st *decodeState) (Message, error) {
	if len(frame) < binHeaderLen {
		return Message{}, fmt.Errorf("wire: binary frame shorter than header")
	}
	if frame[0] != binMagic || frame[1] != CodecBinary {
		return Message{}, fmt.Errorf("wire: bad binary header %x/%x", frame[0], frame[1])
	}
	code, flags := frame[2], frame[3]
	if int(code) >= len(msgTypeByCode) || msgTypeByCode[code] == "" {
		return Message{}, fmt.Errorf("wire: unknown binary message type %d", code)
	}
	var m Message
	m.Type = msgTypeByCode[code]
	m.Seq = binary.LittleEndian.Uint64(frame[8:16])
	r := &binReader{b: frame[binHeaderLen:]}

	m.Codec = uint8(r.uvarint("codec"))
	m.Number = r.uvarint("number")
	m.Max = int(r.varint("max"))
	m.Addr = r.internedString(st, "addr")
	m.Err = r.stringField("err")
	if flags&binFlagRecord != 0 {
		m.Record = &Record{}
		r.record(m.Record, st)
	}
	nrec := r.uvarint("records count")
	if r.err == nil && nrec > uint64(r.remaining()/minBinRecordLen)+1 {
		r.fail("records count")
	}
	if r.err == nil && nrec > 0 {
		if st.reuseRecords && uint64(cap(st.recs)) >= nrec {
			m.Records = st.recs[:nrec]
		} else {
			m.Records = make([]Record, nrec)
			if st.reuseRecords {
				st.recs = m.Records
			}
		}
		for i := range m.Records {
			m.Records[i] = Record{}
			r.record(&m.Records[i], st)
		}
	}
	nerr := r.uvarint("errs count")
	if r.err == nil && nerr > uint64(r.remaining())+1 {
		r.fail("errs count")
	}
	if r.err == nil && nerr > 0 {
		m.Errs = make([]string, nerr)
		for i := range m.Errs {
			m.Errs[i] = r.stringField("errs")
		}
	}
	if r.err == nil && flags&binFlagTrace != 0 {
		var tc span.Context
		tc.TraceID = r.u64("trace id")
		tc.SpanID = r.u64("trace span")
		sb := r.bytes(1, "trace sampled")
		if r.err == nil {
			tc.Sampled = sb[0] != 0
			m.Trace = &tc
		}
	}
	if r.err == nil && flags&binFlagStats != 0 {
		n := r.uvarint("stats len")
		if r.err == nil {
			if n > uint64(r.remaining()) {
				r.fail("stats")
			} else {
				var snap obs.Snapshot
				if err := json.Unmarshal(r.bytes(int(n), "stats"), &snap); err != nil {
					return Message{}, fmt.Errorf("wire: binary stats payload: %w", err)
				}
				m.Stats = &snap
			}
		}
	}
	if r.err == nil && flags&binFlagMembership != 0 {
		m.Epoch = r.uvarint("epoch")
		np := r.uvarint("peers count")
		if r.err == nil && np > uint64(r.remaining())+1 {
			r.fail("peers count")
		}
		if r.err == nil && np > 0 {
			m.Peers = make([]string, np)
			for i := range m.Peers {
				m.Peers[i] = r.internedString(st, "peers")
			}
		}
	}
	if r.err != nil {
		return Message{}, r.err
	}
	if r.remaining() != 0 {
		return Message{}, fmt.Errorf("wire: binary frame carries %d trailing bytes", r.remaining())
	}
	return m, nil
}

// readMessageBinary reads one length-prefixed binary frame. Frames that
// fit the reader's buffer are parsed straight out of it (Peek/Discard,
// zero copies); larger ones fall back to the scratch buffer. The
// payload-length cap is checked before anything is buffered.
func readMessageBinary(r *bufio.Reader, st *decodeState) (Message, error) {
	hdr, err := r.Peek(binHeaderLen)
	if err != nil {
		return Message{}, fmt.Errorf("wire: short binary header: %w", err)
	}
	plen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if plen > maxFrame {
		return Message{}, errFrameTooLarge
	}
	total := binHeaderLen + plen
	if total <= r.Size() {
		frame, err := r.Peek(total)
		if err != nil {
			return Message{}, err
		}
		m, derr := decodeMessageBinary(frame, st)
		if _, err := r.Discard(total); err != nil {
			return Message{}, err
		}
		if derr != nil {
			return Message{}, derr
		}
		st.codec = CodecBinary
		return m, nil
	}
	if cap(st.scratch) < total {
		st.scratch = make([]byte, total)
	}
	frame := st.scratch[:total]
	if _, err := io.ReadFull(r, frame); err != nil {
		return Message{}, fmt.Errorf("wire: short binary frame: %w", err)
	}
	m, derr := decodeMessageBinary(frame, st)
	if derr != nil {
		return Message{}, derr
	}
	st.codec = CodecBinary
	return m, nil
}
