package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
	"time"

	"gsso/internal/obs/span"
)

// codecMessages is a spread of frames covering every field the binary
// layout carries.
func codecMessages() []Message {
	return []Message{
		{Type: MsgPing, Seq: 1},
		{Type: MsgPong, Seq: 2, Codec: CodecBinary},
		{Type: MsgStore, Seq: 3, Record: &Record{
			Addr: "10.0.0.1:9000", Vector: []float64{1.5, 2.25, 0}, Number: 1234, ExpiresUnixMilli: 99999,
		}},
		{Type: MsgQuery, Seq: 4, Number: 777, Max: 8},
		{Type: MsgQuery, Seq: 5, Number: 0, Max: -3},
		{Type: MsgRecords, Seq: 6, Records: []Record{
			{Addr: "a:1", Number: 1},
			{Addr: "b:2", Vector: []float64{0.5}, Number: 2, ExpiresUnixMilli: -7},
		}},
		{Type: MsgRemove, Seq: 7, Addr: "1.2.3.4:5"},
		{Type: MsgRemoved, Seq: 8, Addr: "1.2.3.4:5"},
		{Type: MsgBatchAck, Seq: 9, Errs: []string{"", "store without addr", ""}},
		{Type: MsgError, Seq: 10, Err: "boom"},
		{Type: MsgStore, Seq: 11, Trace: &span.Context{TraceID: 0xdeadbeef, SpanID: 42, Sampled: true},
			Record: &Record{Addr: "x:1"}},
		{Type: MsgPublishBatch, Seq: 12, Records: []Record{{Addr: "x:1", Number: 3}}},
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, in := range codecMessages() {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeMessage(w, in, CodecBinary); err != nil {
			t.Fatalf("write %v: %v", in.Type, err)
		}
		if buf.Bytes()[0] != binMagic {
			t.Fatalf("%v: frame not binary (first byte %#x)", in.Type, buf.Bytes()[0])
		}
		out, err := ReadMessage(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("read %v: %v", in.Type, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mangled %v:\n in: %+v\nout: %+v", in.Type, in, out)
		}
	}
}

// TestBinaryCodecStats covers the stats frame separately: the snapshot
// rides as embedded JSON, so equality is checked on the re-marshaled
// form rather than DeepEqual of the whole Message.
func TestBinaryCodecStats(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", testConfig([]string{"x"}), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	snap := node.Registry().Snapshot()
	in := Message{Type: MsgStatsReply, Seq: 77, Stats: &snap}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, in, CodecBinary); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats == nil || len(out.Stats.Families) != len(snap.Families) {
		t.Fatalf("stats snapshot mangled: %+v", out.Stats)
	}
}

// TestBinaryCodecMixedFrames interleaves JSON and binary frames on one
// stream: the reader must classify each frame independently.
func TestBinaryCodecMixedFrames(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	msgs := codecMessages()
	for i, m := range msgs {
		codec := CodecJSON
		if i%2 == 1 {
			codec = CodecBinary
		}
		if err := writeMessage(w, m, codec); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	var st decodeState
	for i, want := range msgs {
		got, err := readMessageInto(r, &st)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantCodec := CodecJSON
		if i%2 == 1 {
			wantCodec = CodecBinary
		}
		if st.codec != wantCodec {
			t.Fatalf("frame %d decoded as codec %d, want %d", i, st.codec, wantCodec)
		}
		if got.Type != want.Type || got.Seq != want.Seq {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
}

// TestBinaryCodecTruncation feeds every prefix of a valid binary frame:
// each must error, never panic or misparse.
func TestBinaryCodecTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, codecMessages()[2], CodecBinary); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := ReadMessage(bufio.NewReader(bytes.NewReader(full[:i]))); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed without error", i, len(full))
		}
	}
}

// TestBinaryCodecOversizedFrame checks the payload cap fires before the
// body is buffered.
func TestBinaryCodecOversizedFrame(t *testing.T) {
	frame := make([]byte, binHeaderLen)
	frame[0] = binMagic
	frame[1] = CodecBinary
	frame[2] = 1 // ping
	frame[4] = 0xff
	frame[5] = 0xff
	frame[6] = 0xff
	frame[7] = 0x7f // payload length far above maxFrame
	if _, err := ReadMessage(bufio.NewReader(bytes.NewReader(frame))); err != errFrameTooLarge {
		t.Fatalf("oversized frame: err = %v, want errFrameTooLarge", err)
	}
}

// TestCodecNegotiationUpgrade drives one RPC through the pooled
// transport against a binary-capable node and asserts the connection
// upgraded: the JSON request advertises, the JSON reply echoes, and all
// later frames are binary.
func TestCodecNegotiationUpgrade(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", testConfig([]string{"x"}), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	tr := NewTransport(1)
	defer tr.Close()
	for i := 0; i < 3; i++ {
		resp, err := tr.RoundTrip(node.Addr(), Message{Type: MsgPing}, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != MsgPong {
			t.Fatalf("resp = %+v", resp)
		}
	}
	tr.mu.Lock()
	pp := tr.peers[node.Addr()]
	tr.mu.Unlock()
	pp.mu.Lock()
	if len(pp.conns) != 1 {
		pp.mu.Unlock()
		t.Fatalf("pool holds %d conns, want 1", len(pp.conns))
	}
	pc := pp.conns[0]
	pp.mu.Unlock()
	if got := uint8(pc.codec.Load()); got != CodecBinary {
		t.Fatalf("connection codec = %d, want binary after echo", got)
	}
}

// TestCodecStaysJSONAgainstOldPeer pins the server to JSON (the
// pre-binary peer emulation) and asserts the client connection never
// upgrades yet all RPCs succeed.
func TestCodecStaysJSONAgainstOldPeer(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", testConfig([]string{"x"}), nil, time.Minute,
		WithMaxCodec(CodecJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	tr := NewTransport(1)
	defer tr.Close()
	for i := 0; i < 3; i++ {
		if _, err := tr.RoundTrip(node.Addr(), Message{Type: MsgPing}, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	tr.mu.Lock()
	pp := tr.peers[node.Addr()]
	tr.mu.Unlock()
	pp.mu.Lock()
	pc := pp.conns[0]
	pp.mu.Unlock()
	if got := uint8(pc.codec.Load()); got != CodecJSON {
		t.Fatalf("connection codec = %d, want JSON against an old peer", got)
	}
}

// TestMixedCodecInterop is the rollout scenario end to end: a
// binary-codec node and a JSON-pinned node complete publish, query, and
// withdraw against each other in both directions.
func TestMixedCodecInterop(t *testing.T) {
	// Build a two-node cluster by hand so each side gets its own codec
	// cap: addrs are learned from throwaway listeners first (the same
	// two-pass trick as cluster()).
	boot := make([]*Node, 2)
	addrs := make([]string, 2)
	for i := range boot {
		nd, err := NewNode("127.0.0.1:0", testConfig([]string{"p"}), nil, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		boot[i] = nd
		addrs[i] = nd.Addr()
	}
	for _, nd := range boot {
		if err := nd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig(addrs)
	binNode, err := NewNode(addrs[0], cfg, addrs, time.Minute, WithMaxCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer binNode.Close()
	jsonNode, err := NewNode(addrs[1], cfg, addrs, time.Minute, WithMaxCodec(CodecJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer jsonNode.Close()

	for _, nd := range []*Node{binNode, jsonNode} {
		if _, err := nd.Publish(1, testTimeout); err != nil {
			t.Fatalf("publish from %s: %v", nd.Addr(), err)
		}
	}
	// Every record must be queryable from both sides regardless of which
	// codec carried it.
	for _, nd := range []*Node{binNode, jsonNode} {
		for _, owner := range addrs {
			recs, err := nd.query(owner, 0, 16, testTimeout)
			if err != nil {
				t.Fatalf("query %s from %s: %v", owner, nd.Addr(), err)
			}
			if len(recs) == 0 {
				t.Fatalf("no records on %s seen from %s", owner, nd.Addr())
			}
		}
	}
	for _, nd := range []*Node{binNode, jsonNode} {
		if n, err := nd.Withdraw(testTimeout); err != nil || n == 0 {
			t.Fatalf("withdraw from %s: removed=%d err=%v", nd.Addr(), n, err)
		}
	}
	if got := binNode.RecordCount() + jsonNode.RecordCount(); got != 0 {
		t.Fatalf("%d records survive withdrawal", got)
	}
}

// TestCodecMetricsSurface asserts the wire_codec gauge reflects the
// negotiated mix: a binary client conn plus the server-side view of it.
func TestCodecMetricsSurface(t *testing.T) {
	nodes := cluster(t, 2, 1)
	if _, err := nodes[1].ping(nodes[0].Addr(), testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].ping(nodes[0].Addr(), testTimeout); err != nil {
		t.Fatal(err)
	}
	// nodes[1]'s client conn must have upgraded; its registry counts it
	// under wire_codec{version="binary"}.
	snap := nodes[1].Registry().Snapshot()
	var binaryConns float64
	found := false
	for _, fam := range snap.Families {
		if fam.Name != "wire_codec" {
			continue
		}
		for _, s := range fam.Series {
			for _, l := range s.LabelValues {
				if l == "binary" {
					binaryConns += s.Value
					found = true
				}
			}
		}
	}
	if !found || binaryConns < 1 {
		t.Fatalf("wire_codec{version=binary} = %v (found=%v), want >= 1", binaryConns, found)
	}
}
