package wire

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProxy is a TCP fault injector for integration tests against real
// nodes: it listens on an ephemeral port and forwards connections to a
// backend address, but — per its current knobs — drops connections at
// accept (connection loss), black-holes them (accepted, never answered,
// the client's deadline fires), or delays them before forwarding (slow
// link). Decisions draw from a seeded PCG stream, so a fixed seed and a
// fixed connection order replay the same fault trace.
//
// Point a cluster's peer (or landmark) list at proxy addresses to put
// every Store/Query/Ping of the real stack through the injector.
type FaultProxy struct {
	backend string
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	mu        sync.Mutex
	rng       *rand.Rand
	loss      float64
	delay     time.Duration
	blackhole bool
	closed    bool

	dropped    atomic.Int64
	blackholed atomic.Int64
	forwarded  atomic.Int64
}

// NewFaultProxy starts a proxy in front of backend, listening on an
// ephemeral localhost port, injecting nothing until knobs are set.
func NewFaultProxy(backend string, seed uint64) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		backend: backend,
		ln:      ln,
		stop:    make(chan struct{}),
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// Backend returns the address the proxy forwards to.
func (p *FaultProxy) Backend() string { return p.backend }

// SetLoss drops each incoming connection independently with probability
// rate (the client sees a reset/EOF, the retry layer's bread and butter).
func (p *FaultProxy) SetLoss(rate float64) {
	p.mu.Lock()
	p.loss = rate
	p.mu.Unlock()
}

// SetDelay holds each forwarded connection for d before dialing the
// backend, modeling a degraded link.
func (p *FaultProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBlackhole accepts connections but never forwards or answers them;
// clients hang until their own deadline fires — the failure mode that
// distinguishes a timeout from a refused dial.
func (p *FaultProxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// Dropped returns how many connections were dropped at accept.
func (p *FaultProxy) Dropped() int64 { return p.dropped.Load() }

// Blackholed returns how many connections were black-holed.
func (p *FaultProxy) Blackholed() int64 { return p.blackholed.Load() }

// Forwarded returns how many connections reached the backend.
func (p *FaultProxy) Forwarded() int64 { return p.forwarded.Load() }

// Close stops accepting, unblocks black-holed and delayed connections,
// and waits for the pipes to drain.
func (p *FaultProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *FaultProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		drop, delay, blackhole := p.decide()
		if drop {
			p.dropped.Add(1)
			_ = conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.pipe(conn, delay, blackhole)
	}
}

// decide samples the fate of one connection under the current knobs.
func (p *FaultProxy) decide() (drop bool, delay time.Duration, blackhole bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.loss > 0 && p.rng.Float64() < p.loss {
		drop = true
	}
	return drop, p.delay, p.blackhole
}

func (p *FaultProxy) pipe(client net.Conn, delay time.Duration, blackhole bool) {
	defer p.wg.Done()
	defer client.Close()
	if blackhole {
		p.blackholed.Add(1)
		// Swallow the client's bytes until it gives up (its deadline) or
		// the proxy closes; never answer.
		readDone := make(chan struct{})
		go func() {
			_, _ = io.Copy(io.Discard, client)
			close(readDone)
		}()
		select {
		case <-p.stop:
		case <-readDone:
		}
		return
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-p.stop:
			t.Stop()
			return
		}
	}
	server, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	defer server.Close()
	p.forwarded.Add(1)
	// One request/response per connection in this protocol, so the pipes
	// are short-lived; bound them anyway against wedged endpoints.
	deadline := time.Now().Add(time.Minute)
	_ = client.SetDeadline(deadline)
	_ = server.SetDeadline(deadline)
	var once sync.Once
	closeBoth := func() { _ = client.Close(); _ = server.Close() }
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(server, client)
		once.Do(closeBoth)
	}()
	_, _ = io.Copy(client, server)
	once.Do(closeBoth)
}
