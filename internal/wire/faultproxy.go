package wire

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PartitionMode selects how a partition severs the link a FaultProxy
// interposes. The proxy carries one direction of connection initiation
// (clients dialing the backend through it), but an established
// connection carries bytes both ways — so a partition can sever the
// whole link or just one data direction, which is what real asymmetric
// failures (unidirectional fiber cuts, one-way firewall drops) look
// like.
type PartitionMode int

const (
	// PartitionOff injects nothing; the link is whole.
	PartitionOff PartitionMode = iota
	// PartitionBoth severs the link completely: new connections are
	// closed at accept (the client sees a reset/EOF immediately).
	PartitionBoth
	// PartitionToBackend swallows bytes flowing client→backend while
	// letting backend→client flow: requests silently never arrive, so
	// the client hangs until its own deadline fires. One half of a
	// split-brain — the backend can still reach out through other links.
	PartitionToBackend
	// PartitionFromBackend forwards requests but swallows the responses:
	// the backend does the work, the client never hears back and times
	// out. The other half of an asymmetric cut.
	PartitionFromBackend
)

// String names the mode for logs and fault-schedule files.
func (m PartitionMode) String() string {
	switch m {
	case PartitionOff:
		return "off"
	case PartitionBoth:
		return "both"
	case PartitionToBackend:
		return "to-backend"
	case PartitionFromBackend:
		return "from-backend"
	default:
		return "unknown"
	}
}

// FaultProxy is a TCP fault injector for integration tests against real
// nodes: it listens on an ephemeral port and forwards connections to a
// backend address, but — per its current knobs — drops connections at
// accept (connection loss), black-holes them (accepted, never answered,
// the client's deadline fires), delays them before forwarding (slow
// link), or partitions the link symmetrically or one-way (split-brain).
// Decisions draw from a seeded PCG stream, so a fixed seed and a fixed
// connection order replay the same fault trace.
//
// Point a cluster's peer (or landmark) list at proxy addresses to put
// every Store/Query/Ping of the real stack through the injector.
type FaultProxy struct {
	backend string
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	mu        sync.Mutex
	rng       *rand.Rand
	loss      float64
	delay     time.Duration
	blackhole bool
	partition PartitionMode
	closed    bool
	// established tracks the live pipe endpoints (client and backend
	// conns both) so an engaged partition can kill them mid-flight.
	established map[net.Conn]struct{}

	dropped     atomic.Int64
	blackholed  atomic.Int64
	forwarded   atomic.Int64
	partitioned atomic.Int64
	killed      atomic.Int64
}

// NewFaultProxy starts a proxy in front of backend, listening on an
// ephemeral localhost port, injecting nothing until knobs are set.
func NewFaultProxy(backend string, seed uint64) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		backend:     backend,
		ln:          ln,
		stop:        make(chan struct{}),
		rng:         rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		established: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// Backend returns the address the proxy forwards to.
func (p *FaultProxy) Backend() string { return p.backend }

// SetLoss drops each incoming connection independently with probability
// rate (the client sees a reset/EOF, the retry layer's bread and butter).
func (p *FaultProxy) SetLoss(rate float64) {
	p.mu.Lock()
	p.loss = rate
	p.mu.Unlock()
}

// SetDelay holds each forwarded connection for d before dialing the
// backend, modeling a degraded link.
func (p *FaultProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBlackhole accepts connections but never forwards or answers them;
// clients hang until their own deadline fires — the failure mode that
// distinguishes a timeout from a refused dial.
func (p *FaultProxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// SetPartition engages (or lifts, with PartitionOff) a partition on the
// link. The mode governs connections accepted from now on; when
// killEstablished is set and the mode is not PartitionOff, every
// connection currently piped through the proxy is closed too — a real
// cut severs in-flight conversations, it does not wait for them to
// finish. Multiplexed transports feel that as every in-flight request
// failing at once, exactly the blast radius the retry/breaker stack has
// to absorb.
func (p *FaultProxy) SetPartition(mode PartitionMode, killEstablished bool) {
	p.mu.Lock()
	p.partition = mode
	var victims []net.Conn
	if mode != PartitionOff && killEstablished {
		for c := range p.established {
			victims = append(victims, c)
		}
	}
	p.mu.Unlock()
	for _, c := range victims {
		_ = c.Close()
		p.killed.Add(1)
	}
}

// Partition returns the mode currently in force.
func (p *FaultProxy) Partition() PartitionMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partition
}

// Dropped returns how many connections were dropped at accept.
func (p *FaultProxy) Dropped() int64 { return p.dropped.Load() }

// Blackholed returns how many connections were black-holed.
func (p *FaultProxy) Blackholed() int64 { return p.blackholed.Load() }

// Forwarded returns how many connections reached the backend.
func (p *FaultProxy) Forwarded() int64 { return p.forwarded.Load() }

// Partitioned returns how many connections a partition affected: closed
// at accept under PartitionBoth, or piped with one direction severed
// under the asymmetric modes.
func (p *FaultProxy) Partitioned() int64 { return p.partitioned.Load() }

// Killed returns how many established pipe endpoints SetPartition closed.
func (p *FaultProxy) Killed() int64 { return p.killed.Load() }

// Close stops accepting, unblocks black-holed and delayed connections,
// and waits for the pipes to drain.
func (p *FaultProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a live pipe endpoint for partition kills; untrack
// removes it again when the pipe winds down.
func (p *FaultProxy) track(c net.Conn) {
	p.mu.Lock()
	if !p.closed {
		p.established[c] = struct{}{}
	}
	p.mu.Unlock()
}

func (p *FaultProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.established, c)
	p.mu.Unlock()
}

func (p *FaultProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		drop, delay, blackhole, partition := p.decide()
		if drop || partition == PartitionBoth {
			if drop {
				p.dropped.Add(1)
			} else {
				p.partitioned.Add(1)
			}
			_ = conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.pipe(conn, delay, blackhole, partition)
	}
}

// decide samples the fate of one connection under the current knobs.
func (p *FaultProxy) decide() (drop bool, delay time.Duration, blackhole bool, partition PartitionMode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.loss > 0 && p.rng.Float64() < p.loss {
		drop = true
	}
	return drop, p.delay, p.blackhole, p.partition
}

func (p *FaultProxy) pipe(client net.Conn, delay time.Duration, blackhole bool, partition PartitionMode) {
	defer p.wg.Done()
	defer client.Close()
	if blackhole {
		p.blackholed.Add(1)
		// Swallow the client's bytes until it gives up (its deadline) or
		// the proxy closes; never answer.
		readDone := make(chan struct{})
		go func() {
			_, _ = io.Copy(io.Discard, client)
			close(readDone)
		}()
		select {
		case <-p.stop:
		case <-readDone:
		}
		return
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-p.stop:
			t.Stop()
			return
		}
	}
	server, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	defer server.Close()
	if partition != PartitionOff {
		p.partitioned.Add(1)
	} else {
		p.forwarded.Add(1)
	}
	// One request/response per connection in this protocol, so the pipes
	// are short-lived; bound them anyway against wedged endpoints.
	deadline := time.Now().Add(time.Minute)
	_ = client.SetDeadline(deadline)
	_ = server.SetDeadline(deadline)
	p.track(client)
	p.track(server)
	defer p.untrack(client)
	defer p.untrack(server)
	var once sync.Once
	closeBoth := func() { _ = client.Close(); _ = server.Close() }
	// An asymmetric partition severs exactly one data direction: the
	// swallowed side copies into the void (so the sender never blocks or
	// errors — its bytes just vanish, as on a real one-way cut), while
	// the other side keeps flowing until an endpoint gives up.
	toBackend := io.Writer(server)
	fromBackend := io.Writer(client)
	switch partition {
	case PartitionToBackend:
		toBackend = io.Discard
	case PartitionFromBackend:
		fromBackend = io.Discard
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(toBackend, client)
		once.Do(closeBoth)
	}()
	_, _ = io.Copy(fromBackend, server)
	once.Do(closeBoth)
}
