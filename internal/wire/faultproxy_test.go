package wire

import (
	"testing"
	"time"
)

func TestFaultProxyForwards(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := Ping(p.Addr(), testTimeout); err != nil {
		t.Fatalf("ping through clean proxy: %v", err)
	}
	rec := Record{Addr: "x:1", Number: 9, ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	if err := Store(p.Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got, err := Query(p.Addr(), 9, 4, testTimeout); err != nil || len(got) != 1 {
		t.Fatalf("query through proxy = %v, %v", got, err)
	}
	if p.Forwarded() != 3 || p.Dropped() != 0 {
		t.Fatalf("forwarded=%d dropped=%d", p.Forwarded(), p.Dropped())
	}
}

func TestFaultProxyLossHealedByRetry(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetLoss(0.5)

	pol := RetryPolicy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if _, err := Ping(p.Addr(), testTimeout, pol); err != nil {
			t.Fatalf("ping %d through 50%% loss with retries: %v", i, err)
		}
	}
	if p.Dropped() == 0 {
		t.Fatal("loss rate 0.5 dropped nothing across 10+ connections")
	}
}

func TestFaultProxyBlackholeTimesOut(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBlackhole(true)

	start := time.Now()
	if _, err := Ping(p.Addr(), 150*time.Millisecond); err == nil {
		t.Fatal("ping through blackhole succeeded")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("blackhole failed fast (%v); it must hang until the deadline", elapsed)
	}
	if p.Blackholed() != 1 {
		t.Fatalf("blackholed = %d", p.Blackholed())
	}
	// Close with a blackholed connection pending must not hang.
	p.SetBlackhole(false)
}

func TestFaultProxyDelay(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(80 * time.Millisecond)

	start := time.Now()
	if _, err := Ping(p.Addr(), testTimeout); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delayed ping returned in %v", elapsed)
	}
}

func TestFaultProxyCloseIdempotent(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
