package wire

import (
	"bufio"
	"net"
	"testing"
	"time"
)

func TestFaultProxyForwards(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := Ping(p.Addr(), testTimeout); err != nil {
		t.Fatalf("ping through clean proxy: %v", err)
	}
	rec := Record{Addr: "x:1", Number: 9, ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	if err := Store(p.Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got, err := Query(p.Addr(), 9, 4, testTimeout); err != nil || len(got) != 1 {
		t.Fatalf("query through proxy = %v, %v", got, err)
	}
	if p.Forwarded() != 3 || p.Dropped() != 0 {
		t.Fatalf("forwarded=%d dropped=%d", p.Forwarded(), p.Dropped())
	}
}

func TestFaultProxyLossHealedByRetry(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetLoss(0.5)

	pol := RetryPolicy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if _, err := Ping(p.Addr(), testTimeout, pol); err != nil {
			t.Fatalf("ping %d through 50%% loss with retries: %v", i, err)
		}
	}
	if p.Dropped() == 0 {
		t.Fatal("loss rate 0.5 dropped nothing across 10+ connections")
	}
}

func TestFaultProxyBlackholeTimesOut(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBlackhole(true)

	start := time.Now()
	if _, err := Ping(p.Addr(), 150*time.Millisecond); err == nil {
		t.Fatal("ping through blackhole succeeded")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("blackhole failed fast (%v); it must hang until the deadline", elapsed)
	}
	if p.Blackholed() != 1 {
		t.Fatalf("blackholed = %d", p.Blackholed())
	}
	// Close with a blackholed connection pending must not hang.
	p.SetBlackhole(false)
}

func TestFaultProxyDelay(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(80 * time.Millisecond)

	start := time.Now()
	if _, err := Ping(p.Addr(), testTimeout); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delayed ping returned in %v", elapsed)
	}
}

func TestFaultProxyCloseIdempotent(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultProxyPartitionBoth: a symmetric partition closes new
// connections at accept — the client fails fast rather than hanging —
// and lifting it restores the link.
func TestFaultProxyPartitionBoth(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPartition(PartitionBoth, false)

	if _, err := Ping(p.Addr(), testTimeout, RetryPolicy{MaxAttempts: 1}); err == nil {
		t.Fatal("ping crossed a symmetric partition")
	}
	if p.Partitioned() == 0 {
		t.Fatalf("partitioned = %d, want > 0", p.Partitioned())
	}
	p.SetPartition(PartitionOff, false)
	if _, err := Ping(p.Addr(), testTimeout); err != nil {
		t.Fatalf("ping after lifting partition: %v", err)
	}
}

// TestFaultProxyPartitionToBackend: the inbound-severed one-way
// partition must make requests vanish — the client times out AND the
// backend never sees the store — while the link still dials.
func TestFaultProxyPartitionToBackend(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPartition(PartitionToBackend, false)

	rec := Record{Addr: "x:1", Number: 9, ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	start := time.Now()
	err = Store(p.Addr(), rec, 150*time.Millisecond, RetryPolicy{MaxAttempts: 1})
	if err == nil {
		t.Fatal("store crossed a to-backend partition")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("to-backend partition failed fast (%v); requests must vanish, not bounce", elapsed)
	}
	if got := n.RecordCount(); got != 0 {
		t.Fatalf("backend stored %d records through a severed inbound direction", got)
	}
	if p.Partitioned() == 0 {
		t.Fatalf("partitioned = %d, want > 0", p.Partitioned())
	}
}

// TestFaultProxyPartitionFromBackend: the outbound-severed one-way
// partition is the nastier half of split-brain — the backend DOES the
// work (record stored) but the client never hears the ack and times
// out. Retry layers must treat that as failure without double-effects
// upstream; the soft-state model makes the duplicate store idempotent.
func TestFaultProxyPartitionFromBackend(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPartition(PartitionFromBackend, false)

	rec := Record{Addr: "x:1", Number: 9, ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	err = Store(p.Addr(), rec, 150*time.Millisecond, RetryPolicy{MaxAttempts: 1})
	if err == nil {
		t.Fatal("store acked across a from-backend partition")
	}
	// The request crossed: the backend holds the record even though the
	// client saw a timeout.
	deadline := time.Now().Add(testTimeout)
	for n.RecordCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backend never received the store; from-backend must sever only responses")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultProxyPartitionKillsEstablished: engaging a partition with
// killEstablished must sever connections already piped through the
// proxy, not just refuse new ones — a real cut kills in-flight
// conversations.
func TestFaultProxyPartitionKillsEstablished(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	p, err := NewFaultProxy(n.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Establish a healthy pipe and prove it works.
	conn, err := net.DialTimeout("tcp", p.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(bufio.NewWriter(conn), Message{Type: MsgPing, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if resp, err := ReadMessage(br); err != nil || resp.Type != MsgPong {
		t.Fatalf("ping on established conn = %v, %v", resp, err)
	}

	p.SetPartition(PartitionBoth, true)
	if got := p.Killed(); got == 0 {
		t.Fatalf("killed = %d, want > 0", got)
	}
	// The established connection is dead: the next round trip fails.
	_ = conn.SetReadDeadline(time.Now().Add(testTimeout))
	_ = WriteMessage(bufio.NewWriter(conn), Message{Type: MsgPing, Seq: 2})
	if _, err := ReadMessage(br); err == nil {
		t.Fatal("round trip survived a kill-established partition")
	}
}

// TestFaultProxyPartitionModeString pins the names fault-schedule files
// and logs use.
func TestFaultProxyPartitionModeString(t *testing.T) {
	want := map[PartitionMode]string{
		PartitionOff:         "off",
		PartitionBoth:        "both",
		PartitionToBackend:   "to-backend",
		PartitionFromBackend: "from-backend",
		PartitionMode(99):    "unknown",
	}
	for mode, name := range want {
		if got := mode.String(); got != name {
			t.Fatalf("PartitionMode(%d).String() = %q, want %q", mode, got, name)
		}
	}
}
