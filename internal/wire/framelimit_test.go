package wire

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// endlessReader yields 'a' forever, counting the bytes handed out. A
// reader that buffers the whole "line" before checking the frame cap
// never returns from it.
type endlessReader struct{ served int64 }

func (e *endlessReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	e.served += int64(len(p))
	return len(p), nil
}

// TestReadMessageBoundsOversizedFrame is the regression test for the
// frame-limit bug: the 1 MiB cap used to be checked only after
// ReadBytes had buffered the entire line, so a peer streaming an
// unterminated frame forced unbounded allocation. The bounded reader
// must reject the frame as soon as the cap is crossed, consuming only
// marginally more than maxFrame bytes from a never-ending line.
func TestReadMessageBoundsOversizedFrame(t *testing.T) {
	src := &endlessReader{}
	r := bufio.NewReader(src)
	_, err := ReadMessage(r)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("ReadMessage on an endless line = %v, want frame-limit error", err)
	}
	// The bufio layer reads ahead one buffer at a time; anything past
	// cap + a couple of fill-ahead buffers means the line was buffered
	// before the check ran.
	if limit := int64(maxFrame + 128<<10); src.served > limit {
		t.Fatalf("reader consumed %d bytes before rejecting, want <= %d", src.served, limit)
	}
}

// TestReadMessageOversizedTerminatedFrame pins the cap for frames that
// do end in a newline but exceed the limit.
func TestReadMessageOversizedTerminatedFrame(t *testing.T) {
	big := strings.Repeat("x", maxFrame+1) + "\n"
	_, err := ReadMessage(bufio.NewReader(strings.NewReader(big)))
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized terminated frame = %v, want frame-limit error", err)
	}
}

// TestReadMessageFrameAtLimit: a frame exactly at the cap still parses
// (the bound is on the frame, not a smaller internal buffer).
func TestReadMessageFrameAtLimit(t *testing.T) {
	pad := strings.Repeat("a", maxFrame-len(`{"type":"ping","seq":1,"err":""}`)-1)
	frame := `{"type":"ping","seq":1,"err":"` + pad + `"}` + "\n"
	if len(frame) != maxFrame {
		t.Fatalf("frame is %d bytes, want exactly %d", len(frame), maxFrame)
	}
	m, err := ReadMessage(bufio.NewReader(strings.NewReader(frame)))
	if err != nil {
		t.Fatalf("frame at the limit rejected: %v", err)
	}
	if m.Type != MsgPing || m.Seq != 1 {
		t.Fatalf("frame at the limit mangled: %+v", m)
	}
}

// TestBatchMessageRoundTrip covers the new batch frames through the
// codec, per-record errors included.
func TestBatchMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := Message{
		Type: MsgPublishBatch,
		Seq:  9,
		Records: []Record{
			{Addr: "a:1", Vector: []float64{1, 2}, Number: 7, ExpiresUnixMilli: 99},
			{Addr: "b:2", Number: 8},
		},
	}
	if err := WriteMessage(w, in); err != nil {
		t.Fatal(err)
	}
	ack := Message{Type: MsgBatchAck, Seq: 9, Errs: []string{"", "store without addr"}}
	if err := WriteMessage(w, ack); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	out, err := ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgPublishBatch || len(out.Records) != 2 || out.Records[1].Addr != "b:2" {
		t.Fatalf("batch round trip = %+v", out)
	}
	out, err = ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgBatchAck || len(out.Errs) != 2 || out.Errs[1] == "" {
		t.Fatalf("ack round trip = %+v", out)
	}
}
