package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// binFrame encodes m as one binary frame for seed corpora.
func binFrame(m Message) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeMessage(bw, m, CodecBinary); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// sameMessage compares the semantic payload of two messages: everything
// the dispatcher and multiplexer act on. Stats snapshots are compared by
// family count only (they ride as embedded JSON in both codecs).
func sameMessage(t *testing.T, what string, a, b Message) {
	t.Helper()
	if a.Type != b.Type || a.Seq != b.Seq || a.Number != b.Number ||
		a.Max != b.Max || a.Addr != b.Addr || a.Err != b.Err ||
		a.Codec != b.Codec ||
		len(a.Records) != len(b.Records) || len(a.Errs) != len(b.Errs) {
		t.Fatalf("%s mangled message:\n in: %+v\nout: %+v", what, a, b)
	}
	for i := range a.Errs {
		if a.Errs[i] != b.Errs[i] {
			t.Fatalf("%s mangled err %d: %q vs %q", what, i, a.Errs[i], b.Errs[i])
		}
	}
	if (a.Trace == nil) != (b.Trace == nil) ||
		(a.Trace != nil && *a.Trace != *b.Trace) {
		t.Fatalf("%s mangled trace context:\n in: %+v\nout: %+v", what, a.Trace, b.Trace)
	}
	if (a.Record == nil) != (b.Record == nil) {
		t.Fatalf("%s mangled record presence", what)
	}
	recs := a.Records
	brecs := b.Records
	if a.Record != nil {
		recs = append([]Record{*a.Record}, recs...)
		brecs = append([]Record{*b.Record}, brecs...)
	}
	for i := range recs {
		if brecs[i].Addr != recs[i].Addr ||
			brecs[i].Number != recs[i].Number ||
			brecs[i].ExpiresUnixMilli != recs[i].ExpiresUnixMilli ||
			len(brecs[i].Vector) != len(recs[i].Vector) {
			t.Fatalf("%s mangled record %d:\n in: %+v\nout: %+v", what, i, recs[i], brecs[i])
		}
	}
	if (a.Stats == nil) != (b.Stats == nil) ||
		(a.Stats != nil && len(a.Stats.Families) != len(b.Stats.Families)) {
		t.Fatalf("%s mangled stats snapshot", what)
	}
	if a.Epoch != b.Epoch || len(a.Peers) != len(b.Peers) {
		t.Fatalf("%s mangled membership:\n in: %+v\nout: %+v", what, a, b)
	}
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			t.Fatalf("%s mangled peer %d: %q vs %q", what, i, a.Peers[i], b.Peers[i])
		}
	}
}

// FuzzReadMessage fuzzes the wire codec: arbitrary byte streams must
// never panic or hang the frame reader, every accepted frame must
// survive a re-encode/re-read round trip unchanged in the codec it
// arrived in, and no accepted frame may exceed the size cap. The seed
// corpus (here and in testdata/fuzz/FuzzReadMessage) covers truncated
// frames, oversized frames, invalid JSON, batch frames, seq edge values,
// and binary frames — well-formed, truncated, and corrupted.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte("{\"type\":\"ping\",\"seq\":1}\n"))
	f.Add([]byte("{\"type\":\"pong\",\"seq\":18446744073709551615}\n"))
	f.Add([]byte("{\"type\":\"store\",\"seq\":2,\"record\":{\"addr\":\"a:1\",\"vector\":[1.5,2],\"number\":7,\"expires_unix_milli\":99}}\n"))
	f.Add([]byte("{\"type\":\"publish-batch\",\"seq\":3,\"records\":[{\"addr\":\"a:1\",\"number\":1,\"expires_unix_milli\":1},{\"addr\":\"b:2\",\"number\":2,\"expires_unix_milli\":2}]}\n"))
	f.Add([]byte("{\"type\":\"batch-ack\",\"seq\":3,\"errs\":[\"\",\"store without addr\"]}\n"))
	f.Add([]byte("{\"type\":\"error\",\"seq\":4,\"err\":\"boom\"}\n"))
	f.Add([]byte("{\"type\":\"ping\",\"seq\":8,\"trace\":{\"trace_id\":12345,\"span_id\":678,\"sampled\":true}}\n"))
	f.Add([]byte("{\"type\":\"store\",\"seq\":9,\"record\":{\"addr\":\"a:1\",\"number\":7,\"expires_unix_milli\":99},\"trace\":{\"trace_id\":18446744073709551615,\"span_id\":1}}\n"))
	f.Add([]byte("{\"type\":\"ping\",\"seq\":10,\"trace\":{}}\n"))                // zero trace context
	f.Add([]byte("{\"type\":\"ping\",\"seq\":11,\"trace\":{\"trace_id\":-1}}\n")) // trace id out of range
	f.Add([]byte("{\"type\":\"ping\",\"seq\":12,\"future_field\":true}\n"))       // unknown field (fwd compat)
	f.Add([]byte("{\"type\":\"query\",\"seq\":5,\"number\":123,\"max\":8"))       // truncated: no brace, no newline
	f.Add([]byte("{\"type\":\"ping\",\"seq\":"))                                  // truncated mid-value
	f.Add([]byte("this is not json\n"))                                           // invalid JSON
	f.Add([]byte("{\"type\":\"ping\",\"seq\":1}"))                                // missing newline
	f.Add([]byte("\n"))                                                           // empty frame
	f.Add([]byte("{\"type\":\"ping\",\"seq\":-1}\n"))                             // seq out of range
	f.Add([]byte(strings.Repeat("a", 4096) + "\n"))                               // spans bufio fills
	f.Add([]byte("{\"type\":\"records\",\"seq\":6,\"records\":[]}\n" +
		"{\"type\":\"ping\",\"seq\":7}\n")) // two frames back to back

	// Binary frames: plain, negotiating, record-bearing, traced, batched.
	f.Add(binFrame(Message{Type: MsgPing, Seq: 1}))
	f.Add(binFrame(Message{Type: MsgPong, Seq: 2, Codec: CodecBinary}))
	f.Add(binFrame(Message{Type: MsgStore, Seq: 3, Record: &Record{
		Addr: "a:1", Vector: []float64{1.5, 2}, Number: 7, ExpiresUnixMilli: 99}}))
	f.Add(binFrame(Message{Type: MsgQuery, Seq: 4, Number: 123, Max: -8}))
	f.Add(binFrame(Message{Type: MsgPublishBatch, Seq: 5, Records: []Record{
		{Addr: "a:1", Number: 1}, {Addr: "b:2", Number: 2, ExpiresUnixMilli: -2}}}))
	f.Add(binFrame(Message{Type: MsgBatchAck, Seq: 6, Errs: []string{"", "boom"}}))
	truncated := binFrame(Message{Type: MsgRemove, Seq: 7, Addr: "a:1"})
	f.Add(truncated[:len(truncated)-3]) // binary frame cut mid-payload
	corrupt := binFrame(Message{Type: MsgPing, Seq: 8})
	corrupt[2] = 0xee // unknown type code
	f.Add(corrupt)
	mixed := append(binFrame(Message{Type: MsgPing, Seq: 9}),
		[]byte("{\"type\":\"pong\",\"seq\":10}\n")...)
	f.Add(mixed) // binary then JSON on one stream
	f.Add(binFrame(Message{Type: MsgPeers, Seq: 11}))
	f.Add(binFrame(Message{Type: MsgPeersReply, Seq: 12, Epoch: 3,
		Peers: []string{"a:1", "b:2", "c:3"}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var st decodeState
		m, err := readMessageInto(r, &st)
		if err != nil {
			return // rejected input: the only requirement is no panic/hang
		}
		// An accepted frame re-encodes and re-reads to the same message in
		// the codec it arrived in: the codec cannot silently alter Seq (the
		// multiplexer's match key), the type, or the payload shape. The
		// binary side must hold even for payloads JSON cannot carry (NaN
		// vector components), which is why the inbound codec is reused.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeMessage(bw, m, st.codec); err != nil {
			if err == errFrameTooLarge {
				return // outbound writer refuses frames past the cap
			}
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if st.codec == CodecJSON && buf.Len() > maxFrame {
			// JSON escaping can legitimately grow a near-cap frame past
			// the limit on re-encode; the outbound writer would refuse it.
			return
		}
		var st2 decodeState
		m2, err := readMessageInto(bufio.NewReader(&buf), &st2)
		if err != nil {
			t.Fatalf("re-read of accepted frame failed: %v", err)
		}
		sameMessage(t, "round trip", m, m2)
	})
}

// FuzzCodecDifferential is the cross-codec oracle: any frame the JSON
// decoder accepts must encode to binary and decode back semantically
// identical — the two codecs may never drift apart on what a message
// means. (The differential runs JSON-to-binary only: binary can carry
// float payloads, like NaN vector components, that JSON cannot.)
func FuzzCodecDifferential(f *testing.F) {
	f.Add([]byte("{\"type\":\"ping\",\"seq\":1}\n"))
	f.Add([]byte("{\"type\":\"pong\",\"seq\":2,\"codec\":2}\n"))
	f.Add([]byte("{\"type\":\"store\",\"seq\":3,\"record\":{\"addr\":\"a:1\",\"vector\":[1.5,2],\"number\":7,\"expires_unix_milli\":-99}}\n"))
	f.Add([]byte("{\"type\":\"query\",\"seq\":4,\"number\":18446744073709551615,\"max\":-8}\n"))
	f.Add([]byte("{\"type\":\"records\",\"seq\":5,\"records\":[{\"addr\":\"a:1\",\"number\":1},{\"addr\":\"b:2\",\"vector\":[0.5],\"number\":2}]}\n"))
	f.Add([]byte("{\"type\":\"batch-ack\",\"seq\":6,\"errs\":[\"\",\"store without addr\",\"\"]}\n"))
	f.Add([]byte("{\"type\":\"error\",\"seq\":7,\"err\":\"boom\"}\n"))
	f.Add([]byte("{\"type\":\"remove\",\"seq\":8,\"addr\":\"1.2.3.4:5\",\"trace\":{\"trace_id\":12345,\"span_id\":678,\"sampled\":true}}\n"))
	f.Add([]byte("{\"type\":\"peers\",\"seq\":9}\n"))
	f.Add([]byte("{\"type\":\"peers-reply\",\"seq\":10,\"epoch\":4,\"peers\":[\"a:1\",\"b:2\"]}\n"))
	f.Add([]byte("{\"type\":\"peers-reply\",\"seq\":11,\"epoch\":0,\"peers\":[]}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeMessage(bw, m, CodecBinary); err != nil {
			if err == errFrameTooLarge {
				return
			}
			t.Fatalf("binary encode of JSON-accepted frame failed: %v", err)
		}
		frame := buf.Bytes()
		if len(frame) == 0 || frame[0] != binMagic {
			// The encoder fell back to JSON: legal only for messages the
			// binary layout cannot represent (unknown type strings).
			if _, known := msgTypeCode[m.Type]; known {
				t.Fatalf("binary encoder fell back to JSON for known type %q", m.Type)
			}
			return
		}
		var st decodeState
		m2, err := readMessageInto(bufio.NewReader(&buf), &st)
		if err != nil {
			t.Fatalf("binary decode of re-encoded frame failed: %v", err)
		}
		if st.codec != CodecBinary {
			t.Fatalf("re-encoded frame decoded as codec %d", st.codec)
		}
		sameMessage(t, "cross-codec", m, m2)
	})
}
