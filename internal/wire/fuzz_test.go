package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMessage fuzzes the wire codec: arbitrary byte streams must
// never panic or hang the frame reader, every accepted frame must
// survive a re-encode/re-read round trip unchanged, and no accepted
// frame may exceed the size cap. The seed corpus (here and in
// testdata/fuzz/FuzzReadMessage) covers truncated frames, oversized
// frames, invalid JSON, batch frames, and seq edge values.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte("{\"type\":\"ping\",\"seq\":1}\n"))
	f.Add([]byte("{\"type\":\"pong\",\"seq\":18446744073709551615}\n"))
	f.Add([]byte("{\"type\":\"store\",\"seq\":2,\"record\":{\"addr\":\"a:1\",\"vector\":[1.5,2],\"number\":7,\"expires_unix_milli\":99}}\n"))
	f.Add([]byte("{\"type\":\"publish-batch\",\"seq\":3,\"records\":[{\"addr\":\"a:1\",\"number\":1,\"expires_unix_milli\":1},{\"addr\":\"b:2\",\"number\":2,\"expires_unix_milli\":2}]}\n"))
	f.Add([]byte("{\"type\":\"batch-ack\",\"seq\":3,\"errs\":[\"\",\"store without addr\"]}\n"))
	f.Add([]byte("{\"type\":\"error\",\"seq\":4,\"err\":\"boom\"}\n"))
	f.Add([]byte("{\"type\":\"ping\",\"seq\":8,\"trace\":{\"trace_id\":12345,\"span_id\":678,\"sampled\":true}}\n"))
	f.Add([]byte("{\"type\":\"store\",\"seq\":9,\"record\":{\"addr\":\"a:1\",\"number\":7,\"expires_unix_milli\":99},\"trace\":{\"trace_id\":18446744073709551615,\"span_id\":1}}\n"))
	f.Add([]byte("{\"type\":\"ping\",\"seq\":10,\"trace\":{}}\n"))                // zero trace context
	f.Add([]byte("{\"type\":\"ping\",\"seq\":11,\"trace\":{\"trace_id\":-1}}\n")) // trace id out of range
	f.Add([]byte("{\"type\":\"ping\",\"seq\":12,\"future_field\":true}\n"))       // unknown field (fwd compat)
	f.Add([]byte("{\"type\":\"query\",\"seq\":5,\"number\":123,\"max\":8"))       // truncated: no brace, no newline
	f.Add([]byte("{\"type\":\"ping\",\"seq\":"))                                  // truncated mid-value
	f.Add([]byte("this is not json\n"))                                           // invalid JSON
	f.Add([]byte("{\"type\":\"ping\",\"seq\":1}"))                                // missing newline
	f.Add([]byte("\n"))                                                           // empty frame
	f.Add([]byte("{\"type\":\"ping\",\"seq\":-1}\n"))                             // seq out of range
	f.Add([]byte(strings.Repeat("a", 4096) + "\n"))                               // spans bufio fills
	f.Add([]byte("{\"type\":\"records\",\"seq\":6,\"records\":[]}\n" +
		"{\"type\":\"ping\",\"seq\":7}\n")) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		m, err := ReadMessage(r)
		if err != nil {
			return // rejected input: the only requirement is no panic/hang
		}
		// An accepted frame re-encodes and re-reads to the same message:
		// the codec cannot silently alter Seq (the multiplexer's match
		// key), the type, or the payload shape.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := WriteMessage(bw, m); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if buf.Len() > maxFrame {
			// JSON escaping can legitimately grow a near-cap frame past
			// the limit on re-encode; the outbound writer would refuse it.
			return
		}
		m2, err := ReadMessage(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-read of accepted frame failed: %v", err)
		}
		if m2.Type != m.Type || m2.Seq != m.Seq || m2.Number != m.Number ||
			m2.Max != m.Max || m2.Addr != m.Addr || m2.Err != m.Err ||
			len(m2.Records) != len(m.Records) || len(m2.Errs) != len(m.Errs) {
			t.Fatalf("round trip mangled message:\n in: %+v\nout: %+v", m, m2)
		}
		if (m.Trace == nil) != (m2.Trace == nil) ||
			(m.Trace != nil && *m2.Trace != *m.Trace) {
			t.Fatalf("round trip mangled trace context:\n in: %+v\nout: %+v", m.Trace, m2.Trace)
		}
		for i := range m.Records {
			if m2.Records[i].Addr != m.Records[i].Addr ||
				m2.Records[i].Number != m.Records[i].Number ||
				m2.Records[i].ExpiresUnixMilli != m.Records[i].ExpiresUnixMilli {
				t.Fatalf("round trip mangled record %d:\n in: %+v\nout: %+v", i, m, m2)
			}
		}
	})
}
