package wire

import (
	"sync"
	"testing"
	"time"
)

// These tests exist for `go test -race ./internal/wire`: node lifecycle
// under concurrency — Close racing StartRefresh ticks, in-flight handle
// goroutines, and concurrent double-Close.

func TestCloseRacesRefreshAndHandlers(t *testing.T) {
	nodes := cluster(t, 3, 2)
	target := nodes[2]
	target.StartRefresh(2*time.Millisecond, 1, 500*time.Millisecond)

	// Hammer the node with requests while it refreshes...
	stop := make(chan struct{})
	var clients sync.WaitGroup
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = Ping(target.Addr(), 200*time.Millisecond)
				_, _ = Query(target.Addr(), 7, 4, 200*time.Millisecond)
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)

	// ...then close from several goroutines at once, mid-traffic.
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := target.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	closers.Wait()
	close(stop)
	clients.Wait()

	// Idempotent after the concurrent storm too.
	if err := target.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDuringRetryBackoff(t *testing.T) {
	// A node stuck in a long retry backoff (dead landmark) must not stall
	// Close: the stop channel aborts the wait between attempts.
	cfg := testConfig([]string{"127.0.0.1:1"})
	n, err := NewNode("127.0.0.1:0", cfg, nil, time.Minute,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseDelay: time.Second, MaxDelay: 10 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	n.StartRefresh(time.Millisecond, 1, 100*time.Millisecond)
	time.Sleep(20 * time.Millisecond) // let a refresh enter its backoff

	done := make(chan error, 1)
	go func() { done <- n.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a refresh goroutine in retry backoff")
	}
}
