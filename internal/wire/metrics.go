package wire

import (
	"time"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
)

// nodeMetrics holds a node's pre-resolved metric series so the serve and
// dial hot paths never take the registry's family locks.
type nodeMetrics struct {
	reg *obs.Registry

	// requests and errors are resolved per known message type; the
	// "other" slot bounds label cardinality against garbage frames.
	requests map[MsgType]*obs.Counter
	errors   map[MsgType]*obs.Counter
	retries  map[MsgType]*obs.Counter
	// rpc observes whole client calls — the full retry loop, backoff
	// waits included, plus breaker fail-fasts — per type and outcome.
	// wire_serve_latency_ms sees only the server side of one attempt;
	// this is the latency a caller actually experienced.
	rpc     map[MsgType]map[string]*obs.Histogram
	serve   *obs.Histogram
	dial    *obs.Histogram
	records *obs.Gauge

	failover        *obs.Counter
	refreshFailures *obs.Counter
	vectorFallback  *obs.Counter
	breakerState    *obs.GaugeVec // one series per peer, resolved lazily
	ringEpoch       *obs.Gauge    // wire_ring_epoch
	rehomed         *obs.Counter  // wire_rehome_total

	// Transport pool + batching families.
	transport    *transportMetrics
	batchSize    *obs.Histogram
	batchRecords *obs.Counter
	batchErrors  *obs.Counter
}

// transportMetrics is the pooled transport's nil-safe telemetry hook: a
// bare NewTransport carries none, a node-owned one meters its pool.
type transportMetrics struct {
	open   *obs.Gauge   // wire_conns_open
	dials  *obs.Counter // wire_conn_dials_total
	reused *obs.Counter // wire_conn_reuse_total
	// wire_codec{version}: live connections by negotiated codec, client
	// and server side both — during a rollout the pair of series shows
	// how much of the fleet has upgraded.
	codecJSON   *obs.Gauge
	codecBinary *obs.Gauge
}

func (m *transportMetrics) dialed() {
	if m == nil {
		return
	}
	m.dials.Inc()
	m.open.Add(1)
}

func (m *transportMetrics) dropped() {
	if m == nil {
		return
	}
	m.open.Add(-1)
}

func (m *transportMetrics) reuse() {
	if m == nil {
		return
	}
	m.reused.Inc()
}

// codecGauge picks the wire_codec series for a codec version.
func (m *transportMetrics) codecGauge(c uint8) *obs.Gauge {
	if c >= CodecBinary {
		return m.codecBinary
	}
	return m.codecJSON
}

// codecOpen counts a new connection under its starting codec.
func (m *transportMetrics) codecOpen(c uint8) {
	if m == nil {
		return
	}
	m.codecGauge(c).Add(1)
}

// codecClose uncounts a closing connection from its final codec.
func (m *transportMetrics) codecClose(c uint8) {
	if m == nil {
		return
	}
	m.codecGauge(c).Add(-1)
}

// codecShift moves a connection between codec series when negotiation
// upgrades it mid-life.
func (m *transportMetrics) codecShift(from, to uint8) {
	if m == nil || from == to {
		return
	}
	m.codecGauge(from).Add(-1)
	m.codecGauge(to).Add(1)
}

// knownRequestTypes are the request types a node serves (response types
// never reach dispatch).
var knownRequestTypes = []MsgType{MsgPing, MsgStore, MsgQuery, MsgStats, MsgRemove, MsgPublishBatch, MsgPeers}

// msgTypeOther labels requests of unrecognized type.
const msgTypeOther = "other"

// rpcOutcomes are the client-call outcomes wire_rpc_latency_ms is
// resolved for (they mirror the span outcomes, so traces and metrics
// agree on vocabulary).
var rpcOutcomes = []string{span.OutcomeOK, span.OutcomeError, span.OutcomeBreakerOpen}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	requests := reg.Counter("wire_requests_total",
		"Requests served, by message type.", "type")
	errors := reg.Counter("wire_request_errors_total",
		"Requests answered with an error, by message type.", "type")
	retries := reg.Counter("wire_retries_total",
		"Client call re-attempts after transport failures, by message type.", "type")
	rpcLatency := reg.Histogram("wire_rpc_latency_ms",
		"Client-side latency of whole calls (full retry loop, backoff included), milliseconds, by message type and outcome.",
		obs.DefBuckets, "type", "outcome")
	m := &nodeMetrics{
		reg:      reg,
		requests: make(map[MsgType]*obs.Counter, len(knownRequestTypes)+1),
		errors:   make(map[MsgType]*obs.Counter, len(knownRequestTypes)+1),
		retries:  make(map[MsgType]*obs.Counter, len(knownRequestTypes)+1),
		rpc:      make(map[MsgType]map[string]*obs.Histogram, len(knownRequestTypes)+1),
		serve: reg.Histogram("wire_serve_latency_ms",
			"Time to serve one request, milliseconds.", obs.DefBuckets).With(),
		dial: reg.Histogram("wire_dial_rtt_ms",
			"Client-side round-trip times (landmark pings, candidate probes), milliseconds.",
			obs.DefBuckets).With(),
		records: reg.Gauge("wire_records",
			"Soft-state records currently stored on this node.").With(),
		failover: reg.Counter("wire_failover_total",
			"Queries served by a replica owner after the primary failed.").With(),
		refreshFailures: reg.Counter("wire_refresh_failures_total",
			"Refresh-loop publishes that failed (healed on a later tick).").With(),
		vectorFallback: reg.Counter("wire_vector_fallback_total",
			"Landmark dimensions filled from the last known RTT because the landmark was unreachable.").With(),
		breakerState: reg.Gauge("wire_breaker_state",
			"Per-peer failure detector state: 0 closed, 1 half-open, 2 open.", "peer"),
		ringEpoch: reg.Gauge("wire_ring_epoch",
			"Peer-ring epoch this node routes on: 1 at boot, +1 per applied SetPeers. Differing epochs across a fleet expose membership drift.").With(),
		rehomed: reg.Counter("wire_rehome_total",
			"Locally stored records handed off to their new ring owners during a peer-ring swap.").With(),
		transport: &transportMetrics{
			open: reg.Gauge("wire_conns_open",
				"Pooled client connections currently open, all peers.").With(),
			dials: reg.Counter("wire_conn_dials_total",
				"New pooled connections dialed.").With(),
			reused: reg.Counter("wire_conn_reuse_total",
				"Client calls served on an already-open pooled connection.").With(),
		},
		batchSize: reg.Histogram("wire_batch_size",
			"Records per flushed publish-batch frame.",
			[]float64{1, 2, 4, 8, 16, 32, 64}).With(),
		batchRecords: reg.Counter("wire_batch_records_total",
			"Soft-state records stored through publish-batch frames.").With(),
		batchErrors: reg.Counter("wire_batch_errors_total",
			"Batched records lost to whole-frame failures or per-record rejections.").With(),
	}
	codec := reg.Gauge("wire_codec",
		"Live wire connections by negotiated codec version (client and server side).", "version")
	m.transport.codecJSON = codec.With("json")
	m.transport.codecBinary = codec.With("binary")
	for _, t := range append(append([]MsgType(nil), knownRequestTypes...), msgTypeOther) {
		m.requests[t] = requests.With(string(t))
		m.errors[t] = errors.With(string(t))
		m.retries[t] = retries.With(string(t))
		byOutcome := make(map[string]*obs.Histogram, len(rpcOutcomes))
		for _, o := range rpcOutcomes {
			byOutcome[o] = rpcLatency.With(string(t), o)
		}
		m.rpc[t] = byOutcome
	}
	return m
}

// request returns the request counter for a message type.
func (m *nodeMetrics) request(t MsgType) *obs.Counter {
	if c, ok := m.requests[t]; ok {
		return c
	}
	return m.requests[msgTypeOther]
}

// err returns the error counter for a message type.
func (m *nodeMetrics) err(t MsgType) *obs.Counter {
	if c, ok := m.errors[t]; ok {
		return c
	}
	return m.errors[msgTypeOther]
}

// retry returns the retry counter for a message type.
func (m *nodeMetrics) retry(t MsgType) *obs.Counter {
	if c, ok := m.retries[t]; ok {
		return c
	}
	return m.retries[msgTypeOther]
}

// observeDial records one client-side round trip.
func (m *nodeMetrics) observeDial(rtt time.Duration) {
	m.dial.Observe(float64(rtt.Microseconds()) / 1000)
}

// observeRPC records one whole client call (retry loop included) under
// its type and outcome.
func (m *nodeMetrics) observeRPC(t MsgType, outcome string, d time.Duration) {
	byOutcome, ok := m.rpc[t]
	if !ok {
		byOutcome = m.rpc[msgTypeOther]
	}
	if h, ok := byOutcome[outcome]; ok {
		h.Observe(float64(d.Microseconds()) / 1000)
	}
}
