package wire

import (
	"strings"
	"testing"
	"time"

	"gsso/internal/obs"
)

// startNode spins up one node with a private registry for metric tests.
func startNode(t *testing.T, cfg SpaceConfig, peers []string) *Node {
	t.Helper()
	n, err := NewNode("127.0.0.1:0", cfg, peers, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func stubCfg() SpaceConfig {
	return SpaceConfig{Landmarks: []string{"stub"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
}

func TestServeMetricsCountRequests(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	timeout := 2 * time.Second

	if _, err := Ping(n.Addr(), timeout); err != nil {
		t.Fatal(err)
	}
	rec := Record{Addr: "x:1", Number: 3, ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli()}
	if err := Store(n.Addr(), rec, timeout); err != nil {
		t.Fatal(err)
	}
	if _, err := Query(n.Addr(), 3, 4, timeout); err != nil {
		t.Fatal(err)
	}
	// A garbage request type lands in the error counter.
	if _, err := roundTrip(n.Addr(), Message{Type: "bogus", Seq: 9}, timeout); err == nil {
		t.Fatal("bogus request did not error")
	}

	snap := n.Registry().Snapshot()
	for _, tc := range []struct {
		typ  string
		want float64
	}{{"ping", 1}, {"store", 1}, {"query", 1}, {"other", 1}} {
		if v, ok := snap.Value("wire_requests_total", tc.typ); !ok || v != tc.want {
			t.Fatalf("wire_requests_total{type=%q} = %v/%v, want %v", tc.typ, v, ok, tc.want)
		}
	}
	if v, _ := snap.Value("wire_request_errors_total", "other"); v != 1 {
		t.Fatalf("error counter = %v, want 1", v)
	}
	if v, _ := snap.Value("wire_records"); v != 1 {
		t.Fatalf("wire_records = %v, want 1", v)
	}
	f, ok := snap.Family("wire_serve_latency_ms")
	if !ok || f.Series[0].Hist.Count < 3 {
		t.Fatalf("serve histogram missing or empty: %+v", f)
	}
}

func TestStatsWireOp(t *testing.T) {
	n := startNode(t, stubCfg(), nil)
	timeout := 2 * time.Second
	if _, err := Ping(n.Addr(), timeout); err != nil {
		t.Fatal(err)
	}

	snap, err := FetchStats(n.Addr(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("wire_requests_total", "ping"); !ok || v != 1 {
		t.Fatalf("scraped ping count = %v/%v, want 1", v, ok)
	}
	// The scrape itself is counted on the serving side, visible to the
	// next scrape (the snapshot is taken before the counter bump).
	snap2, err := FetchStats(n.Addr(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap2.Value("wire_requests_total", "stats"); v < 1 {
		t.Fatalf("stats requests = %v, want >= 1", v)
	}
}

func TestDialMetricsObserved(t *testing.T) {
	lm := startNode(t, stubCfg(), nil)
	cfg := SpaceConfig{Landmarks: []string{lm.Addr()}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	n := startNode(t, cfg, []string{lm.Addr()})
	if _, err := n.MeasureVector(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	f, ok := n.Registry().Snapshot().Family("wire_dial_rtt_ms")
	if !ok || f.Series[0].Hist.Count != 2 {
		t.Fatalf("dial histogram = %+v, want 2 observations", f)
	}
}

func TestSharedRegistryAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewNodeWithRegistry("127.0.0.1:0", stubCfg(), nil, time.Minute, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNodeWithRegistry("127.0.0.1:0", stubCfg(), nil, time.Minute, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Registry() != reg || b.Registry() != reg {
		t.Fatal("nodes did not adopt the shared registry")
	}
	timeout := 2 * time.Second
	if _, err := Ping(a.Addr(), timeout); err != nil {
		t.Fatal(err)
	}
	if _, err := Ping(b.Addr(), timeout); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Snapshot().Value("wire_requests_total", "ping"); v != 2 {
		t.Fatalf("aggregated pings = %v, want 2", v)
	}
}

func TestStatsSnapshotSerializes(t *testing.T) {
	// The snapshot must survive the JSON wire framing with label values
	// intact (the \x1f series separator never leaks).
	n := startNode(t, stubCfg(), nil)
	if _, err := Ping(n.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := FetchStats(n.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snap.Families {
		for _, s := range f.Series {
			for _, lv := range s.LabelValues {
				if strings.ContainsRune(lv, '\x1f') {
					t.Fatalf("label value %q contains separator", lv)
				}
			}
		}
	}
}
