package wire

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsso/internal/hilbert"
	"gsso/internal/obs"
	"gsso/internal/obs/span"
)

// SpaceConfig is the landmark-space contract every node of a deployment
// shares (the analogue of landmark.Space for the wire world).
type SpaceConfig struct {
	// Landmarks are the dialable addresses of the landmark nodes, in a
	// fixed order all nodes agree on.
	Landmarks []string
	// IndexDims is how many leading vector components feed the curve.
	IndexDims int
	// BitsPerDim is the per-axis grid resolution.
	BitsPerDim int
	// MaxRTTMs is the RTT mapped to the far grid edge.
	MaxRTTMs float64
}

// Validate checks the config.
func (c SpaceConfig) Validate() error {
	switch {
	case len(c.Landmarks) == 0:
		return errors.New("wire: no landmarks")
	case c.IndexDims < 1:
		return errors.New("wire: IndexDims must be >= 1")
	case c.BitsPerDim < 1:
		return errors.New("wire: BitsPerDim must be >= 1")
	case c.MaxRTTMs <= 0:
		return errors.New("wire: MaxRTTMs must be > 0")
	}
	return nil
}

func (c SpaceConfig) curve() (hilbert.Curve, error) {
	dims := c.IndexDims
	if dims > len(c.Landmarks) {
		dims = len(c.Landmarks)
	}
	return hilbert.New(dims, c.BitsPerDim)
}

// Number reduces a landmark vector to the scalar landmark number under
// this config.
func (c SpaceConfig) Number(vector []float64) (uint64, error) {
	curve, err := c.curve()
	if err != nil {
		return 0, err
	}
	coords, err := curve.Quantize(vector[:curve.Dims()], c.MaxRTTMs)
	if err != nil {
		return 0, err
	}
	return curve.Encode(coords)
}

// nodeOptions collects the tunables a Node is built with; NodeOption
// values mutate it.
type nodeOptions struct {
	handleTimeout    time.Duration
	retry            RetryPolicy
	replication      int
	breakerThreshold int
	breakerCooldown  time.Duration
	breakerSink      func(peer string, open bool)
	logger           *slog.Logger
	poolSize         int
	batchWindow      time.Duration
	batchTimeout     time.Duration
	spans            *span.Collector
	maxCodec         uint8
}

func defaultOptions() nodeOptions {
	return nodeOptions{
		handleTimeout:    10 * time.Second,
		retry:            DefaultRetryPolicy(),
		replication:      2,
		breakerThreshold: 3,
		breakerCooldown:  2 * time.Second,
		logger:           slog.Default(),
		poolSize:         2,
		batchTimeout:     2 * time.Second,
		maxCodec:         CodecBinary,
	}
}

// NodeOption customizes a Node at construction.
type NodeOption func(*nodeOptions)

// WithHandleTimeout sets the server-side per-connection deadline (default
// 10s).
func WithHandleTimeout(d time.Duration) NodeOption {
	return func(o *nodeOptions) {
		if d > 0 {
			o.handleTimeout = d
		}
	}
}

// WithRetryPolicy sets the retry policy the node's client calls (pings,
// stores, queries) run under.
func WithRetryPolicy(p RetryPolicy) NodeOption {
	return func(o *nodeOptions) { o.retry = p.normalized() }
}

// WithReplication sets how many ring owners receive the node's record on
// Publish (default 2; clamped to the peer count). Queries fail over down
// the same owner list.
func WithReplication(k int) NodeOption {
	return func(o *nodeOptions) {
		if k >= 1 {
			o.replication = k
		}
	}
}

// WithBreaker tunes the per-peer failure detector: threshold consecutive
// call failures open the breaker; open calls fail fast for cooldown, then
// one half-open probe decides.
func WithBreaker(threshold int, cooldown time.Duration) NodeOption {
	return func(o *nodeOptions) {
		if threshold >= 1 {
			o.breakerThreshold = threshold
		}
		if cooldown > 0 {
			o.breakerCooldown = cooldown
		}
	}
}

// WithBreakerSink installs an observer of per-peer breaker open/close
// transitions (open=true when a peer's breaker trips, false when the
// half-open probe recovers it). This is the wire layer's live-mode
// failure-detection signal: a deployment embedding the overlay forwards
// trips to its failure detector (core.SuspectMember) the same way the
// simulator feeds soft-state expiry. The sink runs on the calling
// goroutine under the breaker's lock — keep it non-blocking and do not
// call back into the node.
func WithBreakerSink(fn func(peer string, open bool)) NodeOption {
	return func(o *nodeOptions) { o.breakerSink = fn }
}

// WithPoolSize sets how many persistent connections the node's transport
// keeps per peer (default 2). Concurrent calls multiplex over them; a
// pool of 1 still pipelines every request onto the single connection.
func WithPoolSize(size int) NodeOption {
	return func(o *nodeOptions) {
		if size >= 1 {
			o.poolSize = size
		}
	}
}

// WithBatchWindow enables publish batching: refresh-loop republishes
// enqueue into per-owner batches flushed every window (or sooner when a
// batch fills) as single MsgPublishBatch frames, instead of paying one
// round trip per record per owner. Zero disables batching (the
// default); the first Publish and explicit Publish calls stay
// synchronous either way, so their error semantics are unchanged.
func WithBatchWindow(window time.Duration) NodeOption {
	return func(o *nodeOptions) {
		if window > 0 {
			o.batchWindow = window
		}
	}
}

// WithTracing attaches a span collector: every head-sampled operation
// (Publish, FindNearest, Withdraw, batch flushes) records a span tree —
// one span per client RPC carrying outcome, attempt count, peer address,
// and latency — and stamps its trace context onto outgoing frames so the
// serving side continues the same trace. Nil (the default) disables
// tracing entirely; the hot-path cost is then a nil check per call. The
// collector belongs to this node: its node label is set from the node's
// listen address.
func WithTracing(c *span.Collector) NodeOption {
	return func(o *nodeOptions) { o.spans = c }
}

// WithMaxCodec caps the codec version the node negotiates, as a client
// and as a server (default CodecBinary). CodecJSON pins the node to the
// original JSON framing: it never advertises, never echoes, and always
// replies in JSON — exactly how a pre-binary peer behaves, which is what
// mixed-fleet rollout tests emulate with it. Decoding is always
// codec-agnostic (frames self-identify), so even a JSON-pinned node
// understands binary frames a newer peer might send.
func WithMaxCodec(c uint8) NodeOption {
	return func(o *nodeOptions) {
		if c < CodecJSON {
			c = CodecJSON
		}
		if c > CodecBinary {
			c = CodecBinary
		}
		o.maxCodec = c
	}
}

// WithLogger sets the node's structured logger (default slog.Default()).
// The node logs only at debug level: refresh failures, replica store
// failures, landmark fallbacks.
func WithLogger(l *slog.Logger) NodeOption {
	return func(o *nodeOptions) {
		if l != nil {
			o.logger = l
		}
	}
}

// peerRing is one immutable generation of the deployment's peer list:
// the sorted addresses laying out the one-hop number ring, plus the
// epoch that generation belongs to (1 at boot, +1 per applied SetPeers).
// Readers load the whole generation in one atomic pointer read, so an
// owner computation never mixes addresses from two memberships.
type peerRing struct {
	peers []string // sorted, deduplicated; never mutated after publish
	epoch uint64
}

// Node is one wire participant: a TCP server holding a shard of the
// soft-state plus a client side for measuring, publishing and querying.
type Node struct {
	cfg  SpaceConfig
	ring atomic.Pointer[peerRing] // current membership; swapped by SetPeers
	ttl  time.Duration
	opt  nodeOptions

	// reconfMu serializes SetPeers calls: concurrent swaps would race on
	// the epoch bump and interleave their re-homing passes.
	reconfMu sync.Mutex

	ln      net.Listener
	addr    string
	stop    chan struct{}
	metrics *nodeMetrics
	tr      *Transport // pooled, multiplexed client side
	batch   *batcher   // publish coalescing; nil unless WithBatchWindow

	mu      sync.Mutex
	records map[string]Record     // by Addr
	lastRec *Record               // last record this node published; nil before first Publish
	conns   map[net.Conn]struct{} // live server-side connections, closed on shutdown
	closed  bool
	wg      sync.WaitGroup

	// Per-peer failure detectors and the last known landmark RTTs used
	// for graceful degradation, both client-side state.
	bmu      sync.Mutex
	breakers map[string]*breaker
	lastRTT  []float64 // by landmark index; NaN = never measured
}

// NewNode creates a node listening on listenAddr (use "127.0.0.1:0" for
// an ephemeral port). peers is the deployment's full address list
// (including this node once started); ttl bounds record lifetime. The
// node gets a private telemetry registry; use NewNodeWithRegistry to
// share one across co-located nodes.
func NewNode(listenAddr string, cfg SpaceConfig, peers []string, ttl time.Duration, opts ...NodeOption) (*Node, error) {
	return NewNodeWithRegistry(listenAddr, cfg, peers, ttl, nil, opts...)
}

// NewNodeWithRegistry is NewNode with an explicit telemetry registry
// (nil creates a fresh one). Sharing a registry aggregates the metrics
// of several nodes in one process, as cmd/overlayd's demo mode does.
func NewNodeWithRegistry(listenAddr string, cfg SpaceConfig, peers []string, ttl time.Duration, reg *obs.Registry, opts ...NodeOption) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ttl <= 0 {
		return nil, errors.New("wire: ttl must be > 0")
	}
	opt := defaultOptions()
	for _, o := range opts {
		o(&opt)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		ttl:      ttl,
		opt:      opt,
		ln:       ln,
		addr:     ln.Addr().String(),
		stop:     make(chan struct{}),
		metrics:  newNodeMetrics(reg),
		records:  make(map[string]Record),
		conns:    make(map[net.Conn]struct{}),
		breakers: make(map[string]*breaker),
		lastRTT:  make([]float64, len(cfg.Landmarks)),
	}
	n.tr = newTransport(opt.poolSize, n.metrics.transport, opt.maxCodec)
	opt.spans.SetNode(n.addr)
	if opt.batchWindow > 0 {
		n.batch = newBatcher(n, opt.batchWindow)
		n.wg.Add(1)
		go n.batch.loop()
	}
	for i := range n.lastRTT {
		n.lastRTT[i] = math.NaN()
	}
	n.ring.Store(&peerRing{peers: normalizePeers(peers), epoch: 1})
	n.metrics.ringEpoch.Set(1)
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// Transport returns the node's pooled client transport (open-connection
// counts are also exported as wire_conns_open).
func (n *Node) Transport() *Transport { return n.tr }

// Addr returns the node's dialable address.
func (n *Node) Addr() string { return n.addr }

// Registry returns the node's telemetry registry (serve it with
// obs.Handler, or scrape it remotely through the STATS op).
func (n *Node) Registry() *obs.Registry { return n.metrics.reg }

// Spans returns the node's span collector (nil when tracing is off).
// Serve it with span.Handler to expose /traces.
func (n *Node) Spans() *span.Collector { return n.opt.spans }

// Close stops the server, the refresh and batch loops if running,
// flushes any pending publish batch (a drain must not silently abandon
// queued records), closes the persistent server connections and the
// client pool, and waits for in-flight handlers.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.mu.Unlock()
	if n.batch != nil {
		n.batch.Flush(n.opt.batchTimeout)
	}
	err := n.ln.Close()
	n.mu.Lock()
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	n.tr.Close()
	return err
}

// StartRefresh launches the soft-state refresh loop: the node republishes
// its record every interval (keeping it alive against the TTL) until the
// node is closed. Failures are tolerated and retried on the next tick —
// soft-state's whole point is that transient losses heal themselves.
// With WithBatchWindow set, republishes enqueue into the per-owner
// batcher instead of paying one synchronous store per owner per tick.
func (n *Node) StartRefresh(interval time.Duration, pings int, timeout time.Duration) {
	if interval <= 0 {
		interval = n.ttl / 3
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				var err error
				if n.batch != nil {
					_, err = n.publishBatched(pings, timeout)
				} else {
					_, err = n.Publish(pings, timeout)
				}
				if err != nil {
					n.metrics.refreshFailures.Inc()
					n.opt.logger.Debug("wire: refresh publish failed", "node", n.addr, "err", err)
				}
			}
		}
	}()
}

// serve accepts connections until Close.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handle(conn)
		}()
	}
}

// handle serves one persistent connection: requests are read in a loop
// and answered in arrival order (clients multiplex by pipelining many
// in-flight requests tagged with distinct Seqs). The handle timeout is
// an idle deadline, re-armed per frame, so a pooled connection lives as
// long as it keeps carrying traffic. The connection is tracked so Close
// can tear it down instead of waiting out the idle deadline.
func (n *Node) handle(conn net.Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return
	}
	n.conns[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connReadBufSize)
	bw := bufio.NewWriter(conn)
	// The serve loop fully consumes each request before reading the next
	// frame, so the decode state may hand the same []Record backing to
	// every batch; rs reuses the reply-side scratch the same way.
	st := &decodeState{reuseRecords: true}
	var rs replyScratch
	// Track this server-side connection in wire_codec: it starts as
	// JSON and shifts when the first binary frame arrives.
	connCodec := uint8(CodecJSON)
	n.metrics.transport.codecOpen(connCodec)
	defer func() { n.metrics.transport.codecClose(connCodec) }()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(n.opt.handleTimeout))
		req, err := readMessageInto(br, st)
		if err != nil {
			return // EOF, idle timeout, or a broken frame: drop the conn
		}
		if st.codec != connCodec {
			n.metrics.transport.codecShift(connCodec, st.codec)
			connCodec = st.codec
		}
		start := time.Now()
		// A sampled request continues the caller's trace: the serve span
		// parents to the client RPC span named in the frame's context, so
		// the stitched tree shows the hop crossing the process boundary.
		var sp *span.Active
		if req.Trace != nil {
			sp = n.opt.spans.StartChild("serve."+string(req.Type), *req.Trace)
			sp.SetPeer(conn.RemoteAddr().String())
		}
		resp := n.dispatch(req, &rs)
		n.metrics.serve.Observe(float64(time.Since(start).Microseconds()) / 1000)
		n.metrics.request(req.Type).Inc()
		if resp.Type == MsgError {
			n.metrics.err(req.Type).Inc()
			sp.Finish(span.OutcomeError, 0, errors.New(resp.Err))
		} else {
			sp.Finish(span.OutcomeOK, 0, nil)
		}
		// Reply in the request's codec: a binary request gets a binary
		// reply (when this node speaks it); a JSON request that
		// advertised binary gets a JSON reply echoing the advertisement,
		// which is the client's cue to upgrade the connection.
		replyCodec := uint8(CodecJSON)
		if n.opt.maxCodec >= CodecBinary {
			if st.codec == CodecBinary {
				replyCodec = CodecBinary
			} else if req.Codec >= CodecBinary {
				resp.Codec = CodecBinary
			}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(n.opt.handleTimeout))
		if err := writeMessage(bw, resp, replyCodec); err != nil {
			return
		}
	}
}

// replyScratch holds per-connection reply buffers. The serve loop is
// strictly read → dispatch → write, so a reply's slices are dead the
// moment the frame is flushed and the next dispatch may reuse them —
// the write path always copies into the frame encoder's buffer.
type replyScratch struct {
	recs []Record
	errs []string
}

// errsFor returns a zeroed n-element string slice, reusing the scratch
// backing when it is large enough.
func (rs *replyScratch) errsFor(n int) []string {
	if rs == nil || cap(rs.errs) < n {
		errs := make([]string, n)
		if rs != nil {
			rs.errs = errs
		}
		return errs
	}
	errs := rs.errs[:n]
	for i := range errs {
		errs[i] = ""
	}
	return errs
}

// dispatch serves one request. rs may be nil (one-shot callers); the
// serve loop passes its per-connection scratch so query and batch-ack
// replies allocate no fresh slices in steady state.
func (n *Node) dispatch(req Message, rs *replyScratch) Message {
	switch req.Type {
	case MsgPing:
		return Message{Type: MsgPong, Seq: req.Seq}
	case MsgStore:
		if req.Record == nil || req.Record.Addr == "" {
			return Message{Type: MsgError, Seq: req.Seq, Err: "store without record"}
		}
		n.mu.Lock()
		n.records[req.Record.Addr] = *req.Record
		count := len(n.records)
		n.mu.Unlock()
		n.metrics.records.Set(float64(count))
		return Message{Type: MsgStored, Seq: req.Seq}
	case MsgQuery:
		max := req.Max
		if max < 1 {
			max = 8
		}
		return Message{Type: MsgRecords, Seq: req.Seq, Records: n.nearest(req.Number, max, rs)}
	case MsgRemove:
		if req.Addr == "" {
			return Message{Type: MsgError, Seq: req.Seq, Err: "remove without addr"}
		}
		n.mu.Lock()
		delete(n.records, req.Addr)
		count := len(n.records)
		n.mu.Unlock()
		n.metrics.records.Set(float64(count))
		return Message{Type: MsgRemoved, Seq: req.Seq, Addr: req.Addr}
	case MsgPublishBatch:
		if len(req.Records) == 0 {
			return Message{Type: MsgError, Seq: req.Seq, Err: "empty publish-batch"}
		}
		// Store what is storable and report the rest per record: one bad
		// record must not void the batch's healthy neighbors.
		errs := rs.errsFor(len(req.Records))
		failed := 0
		n.mu.Lock()
		for i, rec := range req.Records {
			if rec.Addr == "" {
				errs[i] = "store without addr"
				failed++
				continue
			}
			n.records[rec.Addr] = rec
		}
		count := len(n.records)
		n.mu.Unlock()
		n.metrics.records.Set(float64(count))
		resp := Message{Type: MsgBatchAck, Seq: req.Seq}
		if failed > 0 {
			resp.Errs = errs
		}
		return resp
	case MsgStats:
		snap := n.metrics.reg.Snapshot()
		return Message{Type: MsgStatsReply, Seq: req.Seq, Stats: &snap}
	case MsgPeers:
		r := n.ring.Load()
		return Message{Type: MsgPeersReply, Seq: req.Seq, Peers: r.peers, Epoch: r.epoch}
	default:
		return Message{Type: MsgError, Seq: req.Seq, Err: fmt.Sprintf("unknown type %q", req.Type)}
	}
}

// nearest returns up to max live records ordered by landmark-number
// distance, sweeping expired ones as it goes. With a reply scratch, the
// result reuses its backing array — valid until the caller's next
// dispatch.
func (n *Node) nearest(number uint64, max int, rs *replyScratch) []Record {
	now := time.Now()
	n.mu.Lock()
	var live []Record
	if rs != nil {
		live = rs.recs[:0]
	} else {
		live = make([]Record, 0, len(n.records))
	}
	for addr, rec := range n.records {
		if rec.Expired(now) {
			delete(n.records, addr)
			continue
		}
		live = append(live, rec)
	}
	count := len(n.records)
	n.mu.Unlock()
	n.metrics.records.Set(float64(count))
	absDiff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	sort.Slice(live, func(i, j int) bool {
		di, dj := absDiff(live[i].Number, number), absDiff(live[j].Number, number)
		if di != dj {
			return di < dj
		}
		return live[i].Addr < live[j].Addr
	})
	if rs != nil {
		rs.recs = live // keep the grown backing for the next reply
	}
	if len(live) > max {
		live = live[:max]
	}
	return live
}

// RecordCount returns the number of records currently stored.
func (n *Node) RecordCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.records)
}

// breakerFor returns (creating on first use) the failure detector for a
// peer address.
func (n *Node) breakerFor(addr string) *breaker {
	n.bmu.Lock()
	defer n.bmu.Unlock()
	b, ok := n.breakers[addr]
	if !ok {
		b = newBreaker(n.opt.breakerThreshold, n.opt.breakerCooldown,
			n.metrics.breakerState.With(addr))
		b.peer = addr
		b.sink = n.opt.breakerSink
		n.breakers[addr] = b
	}
	return b
}

// errBreakerOpen fails calls fast while a peer's breaker is open.
var errBreakerOpen = errors.New("wire: circuit breaker open")

// call runs one client RPC to addr through the per-peer failure detector
// and the node's retry policy. attempt performs a single round trip on
// the pooled transport; it is re-run on transport failures with backoff,
// and since a transport failure closes the pooled connection it rode on,
// the retry reopens a fresh one. The breaker counts whole calls: retries
// happen inside one call, so only a call that exhausts its attempt
// budget (or hits a permanent error) counts as a failure. A call that
// opens the breaker also evicts the peer's pooled connections — stale
// connections to a crashed peer must not outlive the failure verdict.
//
// Observability: the whole call — every attempt, backoff waits, or the
// breaker fail-fast — is one observation in wire_rpc_latency_ms and,
// under a sampled parent, one span whose context (tc) the attempt stamps
// onto its frame so the server continues the trace.
func (n *Node) call(op MsgType, addr string, parent span.Context, attempt func(tc *span.Context) error) error {
	start := time.Now()
	sp := n.opt.spans.StartChild(string(op), parent)
	sp.SetPeer(addr)
	tc := sp.Context().Ptr()
	br := n.breakerFor(addr)
	if !br.allow(start) {
		err := fmt.Errorf("%w for %s", errBreakerOpen, addr)
		n.metrics.observeRPC(op, span.OutcomeBreakerOpen, time.Since(start))
		sp.Finish(span.OutcomeBreakerOpen, 0, err)
		return err
	}
	attempts := 0
	err := withRetry(n.opt.retry, func() { n.metrics.retry(op).Inc() }, n.stop, func() error {
		attempts++
		return attempt(tc)
	})
	if err != nil {
		br.failure(time.Now())
		if br.snapshot() == breakerOpen {
			n.tr.Evict(addr)
		}
		n.metrics.observeRPC(op, span.OutcomeError, time.Since(start))
		sp.Finish(span.OutcomeError, attempts, err)
		return err
	}
	br.success()
	n.metrics.observeRPC(op, span.OutcomeOK, time.Since(start))
	sp.Finish(span.OutcomeOK, attempts, nil)
	return nil
}

// ping is the node-side Ping: breaker + retry + dial histogram. The RTT
// is the wire round trip on the established pooled connection — a dial,
// when one is needed, happens before the clock starts, so landmark
// vectors measure network distance, not amortized connection setup.
func (n *Node) ping(addr string, timeout time.Duration) (time.Duration, error) {
	return n.pingCtx(span.Context{}, addr, timeout)
}

func (n *Node) pingCtx(parent span.Context, addr string, timeout time.Duration) (time.Duration, error) {
	var rtt time.Duration
	err := n.call(MsgPing, addr, parent, func(tc *span.Context) error {
		resp, d, err := n.tr.roundTripRTT(addr, Message{Type: MsgPing, Trace: tc}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgPong {
			return permanent(fmt.Errorf("wire: unexpected response %q to ping", resp.Type))
		}
		rtt = d
		return nil
	})
	if err == nil {
		n.metrics.observeDial(rtt)
	}
	return rtt, err
}

// store is the node-side Store under breaker + retry.
func (n *Node) store(addr string, rec Record, timeout time.Duration) error {
	return n.storeCtx(span.Context{}, addr, rec, timeout)
}

func (n *Node) storeCtx(parent span.Context, addr string, rec Record, timeout time.Duration) error {
	return n.call(MsgStore, addr, parent, func(tc *span.Context) error {
		resp, err := n.tr.RoundTrip(addr, Message{Type: MsgStore, Record: &rec, Trace: tc}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgStored {
			return permanent(fmt.Errorf("wire: unexpected response %q to store", resp.Type))
		}
		return nil
	})
}

// query is the node-side Query under breaker + retry.
func (n *Node) query(addr string, number uint64, max int, timeout time.Duration) ([]Record, error) {
	return n.queryCtx(span.Context{}, addr, number, max, timeout)
}

func (n *Node) queryCtx(parent span.Context, addr string, number uint64, max int, timeout time.Duration) ([]Record, error) {
	var recs []Record
	err := n.call(MsgQuery, addr, parent, func(tc *span.Context) error {
		resp, err := n.tr.RoundTrip(addr, Message{Type: MsgQuery, Number: number, Max: max, Trace: tc}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRecords {
			return permanent(fmt.Errorf("wire: unexpected response %q to query", resp.Type))
		}
		recs = resp.Records
		return nil
	})
	return recs, err
}

// remove is the node-side Remove under breaker + retry.
func (n *Node) remove(addr, recordAddr string, timeout time.Duration) error {
	return n.removeCtx(span.Context{}, addr, recordAddr, timeout)
}

func (n *Node) removeCtx(parent span.Context, addr, recordAddr string, timeout time.Duration) error {
	return n.call(MsgRemove, addr, parent, func(tc *span.Context) error {
		resp, err := n.tr.RoundTrip(addr, Message{Type: MsgRemove, Addr: recordAddr, Trace: tc}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRemoved {
			return permanent(fmt.Errorf("wire: unexpected response %q to remove", resp.Type))
		}
		return nil
	})
}

// MeasureVector pings every landmark (pings per landmark, keeping the
// minimum, as real deployments do to shed scheduler noise) and returns
// the landmark vector in ms.
func (n *Node) MeasureVector(pings int, timeout time.Duration) ([]float64, error) {
	vec, _, err := n.MeasureVectorFull(pings, timeout)
	return vec, err
}

// MeasureVectorFull is MeasureVector with graceful degradation made
// visible: when a landmark is unreachable but was measured before, its
// dimension is filled from the last known RTT and flagged in the returned
// stale mask instead of failing the whole vector. Only a landmark that
// has never been measured makes the call fail — with no prior, a made-up
// coordinate would place the node arbitrarily in the space.
func (n *Node) MeasureVectorFull(pings int, timeout time.Duration) (vec []float64, stale []bool, err error) {
	return n.measureVectorCtx(span.Context{}, pings, timeout)
}

// measureVectorCtx is MeasureVectorFull under a trace parent: the
// landmark pings become child spans of the operation that needed the
// vector (publish, find-nearest).
func (n *Node) measureVectorCtx(parent span.Context, pings int, timeout time.Duration) (vec []float64, stale []bool, err error) {
	if pings < 1 {
		pings = 1
	}
	vec = make([]float64, len(n.cfg.Landmarks))
	stale = make([]bool, len(n.cfg.Landmarks))
	for i, lm := range n.cfg.Landmarks {
		best := math.Inf(1)
		var lastErr error
		for p := 0; p < pings; p++ {
			rtt, err := n.pingCtx(parent, lm, timeout)
			if err != nil {
				lastErr = err
				if errors.Is(err, errBreakerOpen) {
					break // fail fast for the remaining pings too
				}
				continue
			}
			if ms := float64(rtt.Microseconds()) / 1000; ms < best {
				best = ms
			}
		}
		if math.IsInf(best, 1) {
			if last, ok := n.lastKnownRTT(i); ok {
				vec[i] = last
				stale[i] = true
				n.metrics.vectorFallback.Inc()
				n.opt.logger.Debug("wire: landmark unreachable, using last known RTT",
					"node", n.addr, "landmark", lm, "rtt_ms", last, "err", lastErr)
				continue
			}
			return nil, nil, fmt.Errorf("wire: landmark %s unreachable: %w", lm, lastErr)
		}
		vec[i] = best
		n.setLastKnownRTT(i, best)
	}
	return vec, stale, nil
}

// lastKnownRTT returns the cached RTT for a landmark index, if any.
func (n *Node) lastKnownRTT(i int) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := n.lastRTT[i]
	return v, !math.IsNaN(v)
}

func (n *Node) setLastKnownRTT(i int, ms float64) {
	n.mu.Lock()
	n.lastRTT[i] = ms
	n.mu.Unlock()
}

// normalizePeers returns a sorted, deduplicated copy of a peer list.
func normalizePeers(peers []string) []string {
	out := append([]string(nil), peers...)
	sort.Strings(out)
	w := 0
	for i, p := range out {
		if i > 0 && p == out[w-1] {
			continue
		}
		out[w] = p
		w++
	}
	return out[:w]
}

// ownerSlot maps a landmark number to its primary slot on a peer ring.
func (n *Node) ownerSlot(peers []string, number uint64) int {
	curve, err := n.cfg.curve()
	if err != nil {
		return 0
	}
	span := curve.MaxIndex() + 1
	var slot uint64
	if span == 0 { // full 64-bit curve
		slot = number / (^uint64(0)/uint64(len(peers)) + 1)
	} else {
		slot = number * uint64(len(peers)) / span
	}
	if slot >= uint64(len(peers)) {
		slot = uint64(len(peers)) - 1
	}
	return int(slot)
}

// OwnerOf returns the peer responsible for a landmark number: the peers
// are laid out on the number ring in sorted-address order, and the owner
// is the one whose slot covers the number (a one-hop ring).
func (n *Node) OwnerOf(number uint64) string {
	r := n.ring.Load()
	if len(r.peers) == 0 {
		return n.addr
	}
	return r.peers[n.ownerSlot(r.peers, number)]
}

// OwnersOf returns the k peers responsible for a landmark number: the
// primary owner followed by its ring successors. Replicated publishes
// write to all of them; queries fail over down the same list, so records
// survive any k-1 owner crashes until the next refresh.
func (n *Node) OwnersOf(number uint64, k int) []string {
	return n.ownersOn(n.ring.Load(), number, k)
}

// ownersOn is OwnersOf against an explicit ring generation, so a swap
// can compute old- and new-ring owners side by side.
func (n *Node) ownersOn(r *peerRing, number uint64, k int) []string {
	if len(r.peers) == 0 {
		return []string{n.addr}
	}
	if k < 1 {
		k = 1
	}
	if k > len(r.peers) {
		k = len(r.peers)
	}
	slot := n.ownerSlot(r.peers, number)
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.peers[(slot+i)%len(r.peers)])
	}
	return out
}

// Peers returns the node's current peer ring (sorted). The slice is the
// ring's immutable backing — callers must not mutate it.
func (n *Node) Peers() []string { return n.ring.Load().peers }

// RingEpoch returns the current peer-ring epoch: 1 at boot, +1 per
// applied SetPeers.
func (n *Node) RingEpoch() uint64 { return n.ring.Load().epoch }

// SetPeers atomically swaps the node's peer ring to a new membership and
// re-homes state, returning the resulting ring epoch. An identical list
// (after sorting and deduplication) is a no-op that keeps the current
// epoch. Otherwise the swap, in order:
//
//  1. publishes the new ring (every owner computation from that instant
//     uses the new membership),
//  2. evicts pooled transport connections and breakers for peers that
//     left (stale state for a removed peer must not linger),
//  3. hands off locally stored records this node no longer owns to all
//     their new ring owners and drops them locally,
//  4. re-publishes the node's own record to its new owners when they
//     changed, removing it best-effort from ex-owners still in the ring.
//
// Handoff failures are tolerated: every record's origin refreshes it
// within one refresh interval, and copies stranded on ex-owners expire
// with the TTL — soft-state converges, the swap only accelerates it.
// In-flight RPCs that sampled the old ring may land one last write on an
// ex-owner; that copy too is TTL-bounded. Concurrent SetPeers calls are
// serialized.
func (n *Node) SetPeers(peers []string, timeout time.Duration) (uint64, error) {
	if len(peers) == 0 {
		return 0, errors.New("wire: SetPeers: empty peer list")
	}
	next := normalizePeers(peers)

	n.reconfMu.Lock()
	defer n.reconfMu.Unlock()
	old := n.ring.Load()
	if slices.Equal(old.peers, next) {
		return old.epoch, nil
	}
	nr := &peerRing{peers: next, epoch: old.epoch + 1}
	n.ring.Store(nr)
	n.metrics.ringEpoch.Set(float64(nr.epoch))

	in := make(map[string]bool, len(next))
	for _, p := range next {
		in[p] = true
	}
	for _, p := range old.peers {
		if in[p] {
			continue
		}
		n.tr.Evict(p)
		n.bmu.Lock()
		if b, ok := n.breakers[p]; ok {
			b.success() // park the exported gauge at closed
			delete(n.breakers, p)
		}
		n.bmu.Unlock()
	}

	// Re-home: collect locally stored records whose new owner set no
	// longer includes this node, dropping them under the lock; the wire
	// traffic happens outside it.
	var moved []Record
	now := time.Now()
	n.mu.Lock()
	for addr, rec := range n.records {
		if rec.Expired(now) {
			delete(n.records, addr)
			continue
		}
		if !slices.Contains(n.ownersOn(nr, rec.Number, n.opt.replication), n.addr) {
			moved = append(moved, rec)
			delete(n.records, addr)
		}
	}
	count := len(n.records)
	last := n.lastRec
	n.mu.Unlock()
	n.metrics.records.Set(float64(count))

	for _, rec := range moved {
		for _, owner := range n.ownersOn(nr, rec.Number, n.opt.replication) {
			if owner == n.addr {
				continue
			}
			if err := n.store(owner, rec, timeout); err != nil {
				n.opt.logger.Debug("wire: re-home store failed",
					"node", n.addr, "owner", owner, "record", rec.Addr, "err", err)
			}
		}
		n.metrics.rehomed.Inc()
	}

	if last != nil {
		oldOwners := n.ownersOn(old, last.Number, n.opt.replication)
		newOwners := n.ownersOn(nr, last.Number, n.opt.replication)
		if !slices.Equal(oldOwners, newOwners) {
			rec := *last
			rec.ExpiresUnixMilli = time.Now().Add(n.ttl).UnixMilli()
			for _, owner := range newOwners {
				if err := n.store(owner, rec, timeout); err != nil {
					n.opt.logger.Debug("wire: own-record republish failed",
						"node", n.addr, "owner", owner, "err", err)
				}
			}
			n.mu.Lock()
			if n.lastRec != nil && n.lastRec.Addr == rec.Addr {
				n.lastRec = &rec
			}
			n.mu.Unlock()
			for _, owner := range oldOwners {
				if in[owner] && !slices.Contains(newOwners, owner) {
					_ = n.remove(owner, n.addr, timeout) // best effort; TTL reaps stragglers
				}
			}
		}
	}
	return nr.epoch, nil
}

// Replication returns the node's configured replication factor.
func (n *Node) Replication() int { return n.opt.replication }

// Publish measures this node's landmark vector, derives its number, and
// stores its record at the replication-factor nearest ring owners. It
// succeeds if at least one replica is stored (soft-state heals the rest
// on the next refresh) and returns the published record.
func (n *Node) Publish(pings int, timeout time.Duration) (Record, error) {
	root := n.opt.spans.StartRoot("publish")
	rec, err := n.publish(root.Context(), pings, timeout)
	root.Finish(span.Outcome(err), 0, err)
	return rec, err
}

func (n *Node) publish(parent span.Context, pings int, timeout time.Duration) (Record, error) {
	vec, _, err := n.measureVectorCtx(parent, pings, timeout)
	if err != nil {
		return Record{}, err
	}
	num, err := n.cfg.Number(vec)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Addr:             n.addr,
		Vector:           vec,
		Number:           num,
		ExpiresUnixMilli: time.Now().Add(n.ttl).UnixMilli(),
	}
	owners := n.OwnersOf(num, n.opt.replication)
	stored := 0
	var lastErr error
	for _, owner := range owners {
		if err := n.storeCtx(parent, owner, rec, timeout); err != nil {
			lastErr = err
			n.opt.logger.Debug("wire: replica store failed",
				"node", n.addr, "owner", owner, "err", err)
			continue
		}
		stored++
	}
	if stored == 0 {
		return Record{}, fmt.Errorf("wire: publish: no owner of %d reachable: %w", num, lastErr)
	}
	n.mu.Lock()
	n.lastRec = &rec
	n.mu.Unlock()
	return rec, nil
}

// publishBatched is the refresh loop's Publish under batching: it
// measures and builds the record like Publish but enqueues it for every
// ring owner instead of storing synchronously. Delivery errors surface
// through wire_batch_errors_total when the window flushes; measurement
// errors still fail the call so the refresh loop counts them.
func (n *Node) publishBatched(pings int, timeout time.Duration) (Record, error) {
	// The measurement traces as its own root; delivery happens later in
	// the batcher's flush, which roots a "publish-batch" trace per frame
	// (one frame carries many nodes' records, so it cannot parent to any
	// single publish).
	root := n.opt.spans.StartRoot("publish-enqueue")
	rec, err := n.publishBatchedCtx(root.Context(), pings, timeout)
	root.Finish(span.Outcome(err), 0, err)
	return rec, err
}

func (n *Node) publishBatchedCtx(parent span.Context, pings int, timeout time.Duration) (Record, error) {
	vec, _, err := n.measureVectorCtx(parent, pings, timeout)
	if err != nil {
		return Record{}, err
	}
	num, err := n.cfg.Number(vec)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Addr:             n.addr,
		Vector:           vec,
		Number:           num,
		ExpiresUnixMilli: time.Now().Add(n.ttl).UnixMilli(),
	}
	for _, owner := range n.OwnersOf(num, n.opt.replication) {
		n.batch.Enqueue(owner, rec)
	}
	n.mu.Lock()
	n.lastRec = &rec
	n.mu.Unlock()
	return rec, nil
}

// Withdraw is the proactive departure of §5.2 on the wire: the node
// deletes its own record from every ring owner it published to, so peers
// stop learning about it immediately instead of waiting out the TTL.
// It returns how many owners acknowledged the removal. A node that never
// published withdraws trivially (0, nil). Call before Close when shutting
// down gracefully; crashed nodes skip it, which is exactly the case the
// failure detector and takeover exist for.
func (n *Node) Withdraw(timeout time.Duration) (int, error) {
	root := n.opt.spans.StartRoot("withdraw")
	removed, err := n.withdraw(root.Context(), timeout)
	root.Finish(span.Outcome(err), 0, err)
	return removed, err
}

func (n *Node) withdraw(parent span.Context, timeout time.Duration) (int, error) {
	// Flush pending batches first: a removal must not race a queued
	// republish of the very record being withdrawn, and a drain must not
	// silently drop other nodes' queued records either.
	if n.batch != nil {
		n.batch.Flush(timeout)
	}
	n.mu.Lock()
	rec := n.lastRec
	n.mu.Unlock()
	if rec == nil {
		return 0, nil
	}
	owners := n.OwnersOf(rec.Number, n.opt.replication)
	removed := 0
	var lastErr error
	for _, owner := range owners {
		if err := n.removeCtx(parent, owner, n.addr, timeout); err != nil {
			lastErr = err
			n.opt.logger.Debug("wire: withdraw failed",
				"node", n.addr, "owner", owner, "err", err)
			continue
		}
		removed++
	}
	if removed == 0 {
		return 0, fmt.Errorf("wire: withdraw: no owner reachable: %w", lastErr)
	}
	return removed, nil
}

// FindNearest queries the soft-state for candidates near this node's
// landmark position and RTT-probes up to budget of them, returning the
// closest responding peer and its measured RTT. The query fails over
// down the owner list: a crashed primary's shard is served by the
// replicas written at publish time.
func (n *Node) FindNearest(budget int, timeout time.Duration) (string, time.Duration, error) {
	root := n.opt.spans.StartRoot("find-nearest")
	addr, rtt, err := n.findNearest(root.Context(), budget, timeout)
	root.Finish(span.Outcome(err), 0, err)
	return addr, rtt, err
}

func (n *Node) findNearest(parent span.Context, budget int, timeout time.Duration) (string, time.Duration, error) {
	vec, _, err := n.measureVectorCtx(parent, 1, timeout)
	if err != nil {
		return "", 0, err
	}
	num, err := n.cfg.Number(vec)
	if err != nil {
		return "", 0, err
	}
	owners := n.OwnersOf(num, n.opt.replication)
	var recs []Record
	var qerr error
	for i, owner := range owners {
		recs, qerr = n.queryCtx(parent, owner, num, 3*budget, timeout)
		if qerr == nil {
			if i > 0 {
				n.metrics.failover.Inc()
			}
			break
		}
		n.opt.logger.Debug("wire: owner query failed",
			"node", n.addr, "owner", owner, "err", qerr)
	}
	if qerr != nil {
		return "", 0, fmt.Errorf("wire: all %d owners unreachable: %w", len(owners), qerr)
	}
	bestAddr := ""
	bestRTT := time.Duration(math.MaxInt64)
	probes := 0
	for _, rec := range recs {
		if rec.Addr == n.addr {
			continue
		}
		if probes >= budget {
			break
		}
		rtt, err := n.pingCtx(parent, rec.Addr, timeout)
		if err != nil {
			continue // dead record: the reactive maintenance case
		}
		probes++
		if rtt < bestRTT {
			bestAddr, bestRTT = rec.Addr, rtt
		}
	}
	if bestAddr == "" {
		return "", 0, errors.New("wire: no reachable candidates")
	}
	return bestAddr, bestRTT, nil
}
