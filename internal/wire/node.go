package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"gsso/internal/hilbert"
	"gsso/internal/obs"
)

// SpaceConfig is the landmark-space contract every node of a deployment
// shares (the analogue of landmark.Space for the wire world).
type SpaceConfig struct {
	// Landmarks are the dialable addresses of the landmark nodes, in a
	// fixed order all nodes agree on.
	Landmarks []string
	// IndexDims is how many leading vector components feed the curve.
	IndexDims int
	// BitsPerDim is the per-axis grid resolution.
	BitsPerDim int
	// MaxRTTMs is the RTT mapped to the far grid edge.
	MaxRTTMs float64
}

// Validate checks the config.
func (c SpaceConfig) Validate() error {
	switch {
	case len(c.Landmarks) == 0:
		return errors.New("wire: no landmarks")
	case c.IndexDims < 1:
		return errors.New("wire: IndexDims must be >= 1")
	case c.BitsPerDim < 1:
		return errors.New("wire: BitsPerDim must be >= 1")
	case c.MaxRTTMs <= 0:
		return errors.New("wire: MaxRTTMs must be > 0")
	}
	return nil
}

func (c SpaceConfig) curve() (hilbert.Curve, error) {
	dims := c.IndexDims
	if dims > len(c.Landmarks) {
		dims = len(c.Landmarks)
	}
	return hilbert.New(dims, c.BitsPerDim)
}

// Number reduces a landmark vector to the scalar landmark number under
// this config.
func (c SpaceConfig) Number(vector []float64) (uint64, error) {
	curve, err := c.curve()
	if err != nil {
		return 0, err
	}
	coords, err := curve.Quantize(vector[:curve.Dims()], c.MaxRTTMs)
	if err != nil {
		return 0, err
	}
	return curve.Encode(coords)
}

// Node is one wire participant: a TCP server holding a shard of the
// soft-state plus a client side for measuring, publishing and querying.
type Node struct {
	cfg   SpaceConfig
	peers []string // full deployment peer list, sorted; owner = number ring
	ttl   time.Duration

	ln      net.Listener
	addr    string
	stop    chan struct{}
	metrics *nodeMetrics

	mu      sync.Mutex
	records map[string]Record // by Addr
	closed  bool
	wg      sync.WaitGroup
}

// NewNode creates a node listening on listenAddr (use "127.0.0.1:0" for
// an ephemeral port). peers is the deployment's full address list
// (including this node once started); ttl bounds record lifetime. The
// node gets a private telemetry registry; use NewNodeWithRegistry to
// share one across co-located nodes.
func NewNode(listenAddr string, cfg SpaceConfig, peers []string, ttl time.Duration) (*Node, error) {
	return NewNodeWithRegistry(listenAddr, cfg, peers, ttl, nil)
}

// NewNodeWithRegistry is NewNode with an explicit telemetry registry
// (nil creates a fresh one). Sharing a registry aggregates the metrics
// of several nodes in one process, as cmd/overlayd's demo mode does.
func NewNodeWithRegistry(listenAddr string, cfg SpaceConfig, peers []string, ttl time.Duration, reg *obs.Registry) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ttl <= 0 {
		return nil, errors.New("wire: ttl must be > 0")
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		peers:   append([]string(nil), peers...),
		ttl:     ttl,
		ln:      ln,
		addr:    ln.Addr().String(),
		stop:    make(chan struct{}),
		metrics: newNodeMetrics(reg),
		records: make(map[string]Record),
	}
	sort.Strings(n.peers)
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// Addr returns the node's dialable address.
func (n *Node) Addr() string { return n.addr }

// Registry returns the node's telemetry registry (serve it with
// obs.Handler, or scrape it remotely through the STATS op).
func (n *Node) Registry() *obs.Registry { return n.metrics.reg }

// Close stops the server, the refresh loop if running, and waits for
// in-flight handlers.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

// StartRefresh launches the soft-state refresh loop: the node republishes
// its record every interval (keeping it alive against the TTL) until the
// node is closed. Failures are tolerated and retried on the next tick —
// soft-state's whole point is that transient losses heal themselves.
func (n *Node) StartRefresh(interval time.Duration, pings int, timeout time.Duration) {
	if interval <= 0 {
		interval = n.ttl / 3
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				_, _ = n.Publish(pings, timeout)
			}
		}
	}()
}

// serve accepts connections until Close.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handle(conn)
		}()
	}
}

// handle serves one connection: one request, one response.
func (n *Node) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	req, err := ReadMessage(br)
	if err != nil {
		return
	}
	start := time.Now()
	resp := n.dispatch(req)
	n.metrics.serve.Observe(float64(time.Since(start).Microseconds()) / 1000)
	n.metrics.request(req.Type).Inc()
	if resp.Type == MsgError {
		n.metrics.err(req.Type).Inc()
	}
	_ = WriteMessage(bw, resp)
}

func (n *Node) dispatch(req Message) Message {
	switch req.Type {
	case MsgPing:
		return Message{Type: MsgPong, Seq: req.Seq}
	case MsgStore:
		if req.Record == nil || req.Record.Addr == "" {
			return Message{Type: MsgError, Seq: req.Seq, Err: "store without record"}
		}
		n.mu.Lock()
		n.records[req.Record.Addr] = *req.Record
		count := len(n.records)
		n.mu.Unlock()
		n.metrics.records.Set(float64(count))
		return Message{Type: MsgStored, Seq: req.Seq}
	case MsgQuery:
		max := req.Max
		if max < 1 {
			max = 8
		}
		return Message{Type: MsgRecords, Seq: req.Seq, Records: n.nearest(req.Number, max)}
	case MsgStats:
		snap := n.metrics.reg.Snapshot()
		return Message{Type: MsgStatsReply, Seq: req.Seq, Stats: &snap}
	default:
		return Message{Type: MsgError, Seq: req.Seq, Err: fmt.Sprintf("unknown type %q", req.Type)}
	}
}

// nearest returns up to max live records ordered by landmark-number
// distance, sweeping expired ones as it goes.
func (n *Node) nearest(number uint64, max int) []Record {
	now := time.Now()
	n.mu.Lock()
	live := make([]Record, 0, len(n.records))
	for addr, rec := range n.records {
		if rec.Expired(now) {
			delete(n.records, addr)
			continue
		}
		live = append(live, rec)
	}
	count := len(n.records)
	n.mu.Unlock()
	n.metrics.records.Set(float64(count))
	absDiff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	sort.Slice(live, func(i, j int) bool {
		di, dj := absDiff(live[i].Number, number), absDiff(live[j].Number, number)
		if di != dj {
			return di < dj
		}
		return live[i].Addr < live[j].Addr
	})
	if len(live) > max {
		live = live[:max]
	}
	return live
}

// RecordCount returns the number of records currently stored.
func (n *Node) RecordCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.records)
}

// MeasureVector pings every landmark (pings per landmark, keeping the
// minimum, as real deployments do to shed scheduler noise) and returns
// the landmark vector in ms.
func (n *Node) MeasureVector(pings int, timeout time.Duration) ([]float64, error) {
	if pings < 1 {
		pings = 1
	}
	vec := make([]float64, len(n.cfg.Landmarks))
	for i, lm := range n.cfg.Landmarks {
		best := math.Inf(1)
		var lastErr error
		for p := 0; p < pings; p++ {
			rtt, err := Ping(lm, timeout)
			if err != nil {
				lastErr = err
				continue
			}
			n.metrics.observeDial(rtt)
			if ms := float64(rtt.Microseconds()) / 1000; ms < best {
				best = ms
			}
		}
		if math.IsInf(best, 1) {
			return nil, fmt.Errorf("wire: landmark %s unreachable: %w", lm, lastErr)
		}
		vec[i] = best
	}
	return vec, nil
}

// OwnerOf returns the peer responsible for a landmark number: the peers
// are laid out on the number ring in sorted-address order, and the owner
// is the one whose slot covers the number (a one-hop ring).
func (n *Node) OwnerOf(number uint64) string {
	if len(n.peers) == 0 {
		return n.addr
	}
	curve, err := n.cfg.curve()
	if err != nil {
		return n.peers[0]
	}
	span := curve.MaxIndex() + 1
	var slot uint64
	if span == 0 { // full 64-bit curve
		slot = number / (^uint64(0)/uint64(len(n.peers)) + 1)
	} else {
		slot = number * uint64(len(n.peers)) / span
	}
	if slot >= uint64(len(n.peers)) {
		slot = uint64(len(n.peers)) - 1
	}
	return n.peers[slot]
}

// Publish measures this node's landmark vector, derives its number, and
// stores its record at the owning peer. It returns the published record.
func (n *Node) Publish(pings int, timeout time.Duration) (Record, error) {
	vec, err := n.MeasureVector(pings, timeout)
	if err != nil {
		return Record{}, err
	}
	num, err := n.cfg.Number(vec)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Addr:             n.addr,
		Vector:           vec,
		Number:           num,
		ExpiresUnixMilli: time.Now().Add(n.ttl).UnixMilli(),
	}
	if err := Store(n.OwnerOf(num), rec, timeout); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// FindNearest queries the soft-state for candidates near this node's
// landmark position and RTT-probes up to budget of them, returning the
// closest responding peer and its measured RTT.
func (n *Node) FindNearest(budget int, timeout time.Duration) (string, time.Duration, error) {
	vec, err := n.MeasureVector(1, timeout)
	if err != nil {
		return "", 0, err
	}
	num, err := n.cfg.Number(vec)
	if err != nil {
		return "", 0, err
	}
	recs, err := Query(n.OwnerOf(num), num, 3*budget, timeout)
	if err != nil {
		return "", 0, err
	}
	bestAddr := ""
	bestRTT := time.Duration(math.MaxInt64)
	probes := 0
	for _, rec := range recs {
		if rec.Addr == n.addr {
			continue
		}
		if probes >= budget {
			break
		}
		rtt, err := Ping(rec.Addr, timeout)
		if err != nil {
			continue // dead record: the reactive maintenance case
		}
		n.metrics.observeDial(rtt)
		probes++
		if rtt < bestRTT {
			bestAddr, bestRTT = rec.Addr, rtt
		}
	}
	if bestAddr == "" {
		return "", 0, errors.New("wire: no reachable candidates")
	}
	return bestAddr, bestRTT, nil
}
