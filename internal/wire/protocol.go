// Package wire runs the paper's proximity subsystem over a real network:
// nodes measure RTTs to landmark nodes with TCP pings, reduce the vector
// to a landmark number through the same Hilbert machinery as the
// simulator, publish soft-state records (address, vector, number, TTL)
// onto peer nodes keyed by landmark number, and answer nearest-peer
// queries by returning the records closest to a caller's number.
//
// The full overlay protocol (eCAN zones, routing) is exercised by the
// simulator; wire demonstrates that the proximity-generation and
// soft-state code paths are not simulator-only. Placement uses a one-hop
// ring over a static peer list — the degenerate Chord of the appendix.
//
// Framing is newline-delimited JSON over TCP: one request, one response
// per message.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"gsso/internal/obs"
)

// MsgType enumerates protocol messages.
type MsgType string

// Protocol messages.
const (
	MsgPing       MsgType = "ping"
	MsgPong       MsgType = "pong"
	MsgStore      MsgType = "store"
	MsgStored     MsgType = "stored"
	MsgQuery      MsgType = "query"
	MsgRecords    MsgType = "records"
	MsgStats      MsgType = "stats"
	MsgStatsReply MsgType = "stats-reply"
	MsgRemove     MsgType = "remove"
	MsgRemoved    MsgType = "removed"
	MsgError      MsgType = "error"
)

// Record is one soft-state entry: a peer's position in the landmark
// space.
type Record struct {
	// Addr is the peer's dialable address.
	Addr string `json:"addr"`
	// Vector is the peer's landmark vector (RTTs in ms, landmark order).
	Vector []float64 `json:"vector"`
	// Number is the peer's scalar landmark number.
	Number uint64 `json:"number"`
	// ExpiresUnixMilli is the soft-state deadline.
	ExpiresUnixMilli int64 `json:"expires_unix_milli"`
}

// Expired reports whether the record is past its deadline at now.
func (r Record) Expired(now time.Time) bool {
	return now.UnixMilli() > r.ExpiresUnixMilli
}

// Message is the single wire frame.
type Message struct {
	Type MsgType `json:"type"`
	// Seq echoes request sequence numbers into responses.
	Seq uint64 `json:"seq"`
	// Record rides on store requests.
	Record *Record `json:"record,omitempty"`
	// Number keys query requests.
	Number uint64 `json:"number,omitempty"`
	// Max bounds how many records a query wants back.
	Max int `json:"max,omitempty"`
	// Records ride on query responses.
	Records []Record `json:"records,omitempty"`
	// Addr keys remove requests (the record to withdraw) and echoes on
	// removed responses.
	Addr string `json:"addr,omitempty"`
	// Stats rides on stats-reply responses: the serving node's full
	// telemetry snapshot, so peers can scrape each other.
	Stats *obs.Snapshot `json:"stats,omitempty"`
	// Err describes failures on MsgError.
	Err string `json:"err,omitempty"`
}

// WriteMessage frames and sends one message.
func WriteMessage(w *bufio.Writer, m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return err
	}
	return w.Flush()
}

// ReadMessage reads one newline-delimited frame. Frames above 1 MiB are
// rejected to bound memory against misbehaving peers.
func ReadMessage(r *bufio.Reader) (Message, error) {
	const maxFrame = 1 << 20
	line, err := r.ReadBytes('\n')
	if err != nil {
		return Message{}, err
	}
	if len(line) > maxFrame {
		return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(line))
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return m, nil
}

// roundTrip dials addr, sends req, and reads one response.
func roundTrip(addr string, req Message, timeout time.Duration) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Message{}, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return Message{}, err
	}
	bw := bufio.NewWriter(conn)
	if err := WriteMessage(bw, req); err != nil {
		return Message{}, err
	}
	resp, err := ReadMessage(bufio.NewReader(conn))
	if err != nil {
		return Message{}, err
	}
	// Protocol-level failures are permanent: the peer is reachable and
	// answering, so retrying the identical request cannot help.
	if resp.Type == MsgError {
		return resp, permanent(fmt.Errorf("wire: remote error: %s", resp.Err))
	}
	if resp.Seq != req.Seq {
		return resp, permanent(fmt.Errorf("wire: response seq %d for request %d", resp.Seq, req.Seq))
	}
	return resp, nil
}

// The client helpers below take an optional trailing RetryPolicy; without
// one they perform a single attempt. Transport failures retry under the
// policy (capped exponential backoff, full jitter); protocol errors never
// retry.

// Ping measures the RTT to addr with one request/response round trip. The
// returned RTT times only the successful attempt.
func Ping(addr string, timeout time.Duration, policy ...RetryPolicy) (time.Duration, error) {
	var rtt time.Duration
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		start := time.Now()
		resp, err := roundTrip(addr, Message{Type: MsgPing, Seq: 1}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgPong {
			return permanent(fmt.Errorf("wire: unexpected response %q to ping", resp.Type))
		}
		rtt = time.Since(start)
		return nil
	})
	return rtt, err
}

// Store publishes a record to the peer at addr.
func Store(addr string, rec Record, timeout time.Duration, policy ...RetryPolicy) error {
	return withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgStore, Seq: 2, Record: &rec}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgStored {
			return permanent(fmt.Errorf("wire: unexpected response %q to store", resp.Type))
		}
		return nil
	})
}

// Query asks the peer at addr for up to max records nearest to number.
func Query(addr string, number uint64, max int, timeout time.Duration, policy ...RetryPolicy) ([]Record, error) {
	var recs []Record
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgQuery, Seq: 3, Number: number, Max: max}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRecords {
			return permanent(fmt.Errorf("wire: unexpected response %q to query", resp.Type))
		}
		recs = resp.Records
		return nil
	})
	return recs, err
}

// Remove withdraws the record identified by recordAddr from the peer at
// addr (the proactive-departure case of §5.2: a node leaving gracefully
// deletes its soft-state instead of letting it expire). Removing an
// absent record succeeds — the goal state already holds.
func Remove(addr, recordAddr string, timeout time.Duration, policy ...RetryPolicy) error {
	return withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgRemove, Seq: 5, Addr: recordAddr}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRemoved {
			return permanent(fmt.Errorf("wire: unexpected response %q to remove", resp.Type))
		}
		return nil
	})
}

// FetchStats scrapes the telemetry snapshot of the peer at addr through
// the STATS wire op.
func FetchStats(addr string, timeout time.Duration, policy ...RetryPolicy) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgStats, Seq: 4}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgStatsReply || resp.Stats == nil {
			return permanent(fmt.Errorf("wire: unexpected response %q to stats", resp.Type))
		}
		snap = *resp.Stats
		return nil
	})
	return snap, err
}
