// Package wire runs the paper's proximity subsystem over a real network:
// nodes measure RTTs to landmark nodes with TCP pings, reduce the vector
// to a landmark number through the same Hilbert machinery as the
// simulator, publish soft-state records (address, vector, number, TTL)
// onto peer nodes keyed by landmark number, and answer nearest-peer
// queries by returning the records closest to a caller's number.
//
// The full overlay protocol (eCAN zones, routing) is exercised by the
// simulator; wire demonstrates that the proximity-generation and
// soft-state code paths are not simulator-only. Placement uses a one-hop
// ring over a static peer list — the degenerate Chord of the appendix.
//
// Framing is newline-delimited JSON over TCP. Connections are
// persistent and multiplexed: many requests may be in flight on one
// connection at once, and responses are matched back to callers by Seq
// (see Transport). The package-level helpers (Ping, Store, Query, ...)
// keep the simple dial-per-call behavior for scripts and tests; node
// client calls go through the node's pooled Transport.
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
)

// MsgType enumerates protocol messages.
type MsgType string

// Protocol messages.
const (
	MsgPing       MsgType = "ping"
	MsgPong       MsgType = "pong"
	MsgStore      MsgType = "store"
	MsgStored     MsgType = "stored"
	MsgQuery      MsgType = "query"
	MsgRecords    MsgType = "records"
	MsgStats      MsgType = "stats"
	MsgStatsReply MsgType = "stats-reply"
	MsgRemove     MsgType = "remove"
	MsgRemoved    MsgType = "removed"
	// MsgPublishBatch carries several soft-state records in one frame:
	// publishes and refreshes headed for the same ring owner are coalesced
	// by the client-side batcher instead of paying one round trip each.
	MsgPublishBatch MsgType = "publish-batch"
	// MsgBatchAck answers a publish-batch. A fully stored batch has no
	// Errs; a partially failed one carries one entry per record (empty
	// string = stored) so the sender can account per record.
	MsgBatchAck MsgType = "batch-ack"
	// MsgPeers asks a node for its current peer ring; MsgPeersReply
	// carries the sorted peer list and the ring epoch it belongs to.
	// Operators and the e2e checker use it to learn the live membership
	// instead of trusting a boot-time spec.
	MsgPeers      MsgType = "peers"
	MsgPeersReply MsgType = "peers-reply"
	MsgError      MsgType = "error"
)

// Record is one soft-state entry: a peer's position in the landmark
// space.
type Record struct {
	// Addr is the peer's dialable address.
	Addr string `json:"addr"`
	// Vector is the peer's landmark vector (RTTs in ms, landmark order).
	Vector []float64 `json:"vector"`
	// Number is the peer's scalar landmark number.
	Number uint64 `json:"number"`
	// ExpiresUnixMilli is the soft-state deadline.
	ExpiresUnixMilli int64 `json:"expires_unix_milli"`
}

// Expired reports whether the record is past its deadline at now.
func (r Record) Expired(now time.Time) bool {
	return now.UnixMilli() > r.ExpiresUnixMilli
}

// Message is the single wire frame.
type Message struct {
	Type MsgType `json:"type"`
	// Seq echoes request sequence numbers into responses.
	Seq uint64 `json:"seq"`
	// Record rides on store requests.
	Record *Record `json:"record,omitempty"`
	// Number keys query requests.
	Number uint64 `json:"number,omitempty"`
	// Max bounds how many records a query wants back.
	Max int `json:"max,omitempty"`
	// Records ride on query responses and publish-batch requests.
	Records []Record `json:"records,omitempty"`
	// Errs ride on batch-ack responses to a partially failed batch: one
	// entry per request record, empty string = stored.
	Errs []string `json:"errs,omitempty"`
	// Addr keys remove requests (the record to withdraw) and echoes on
	// removed responses.
	Addr string `json:"addr,omitempty"`
	// Stats rides on stats-reply responses: the serving node's full
	// telemetry snapshot, so peers can scrape each other.
	Stats *obs.Snapshot `json:"stats,omitempty"`
	// Trace carries the distributed-tracing context on sampled requests:
	// the trace ID, the caller's span (which the server's span parents
	// to), and the head sampling bit. Absent on unsampled traffic, so
	// tracing-off frames are byte-identical to the pre-trace format.
	// Compatibility is free in both directions: old decoders ignore the
	// unknown field, and new decoders treat its absence as "unsampled".
	Trace *span.Context `json:"trace,omitempty"`
	// Peers rides on peers-reply responses: the serving node's current
	// peer ring, sorted. Together with Epoch it lets any client see the
	// membership a node is actually routing on.
	Peers []string `json:"peers,omitempty"`
	// Epoch rides on peers-reply responses: the ring epoch the Peers
	// list belongs to. It starts at 1 and increments on every applied
	// SetPeers, so differing epochs across a fleet expose membership
	// drift mid-reconfiguration.
	Epoch uint64 `json:"epoch,omitempty"`
	// Codec advertises the highest codec version the sender can read
	// (see CodecJSON/CodecBinary). On a JSON request it asks "may we
	// switch this connection to binary?"; a binary-capable server echoes
	// it on the response and the client upgrades the connection. Peers
	// predating the binary codec ignore the unknown field and never
	// echo, so the connection simply stays JSON. Zero means "JSON only".
	Codec uint8 `json:"codec,omitempty"`
	// Err describes failures on MsgError.
	Err string `json:"err,omitempty"`
}

// maxFrame bounds one wire frame; larger frames are rejected to bound
// memory against misbehaving peers.
const maxFrame = 1 << 20

// errFrameTooLarge rejects frames that exceed maxFrame. The check fires
// while reading, before the oversized tail is buffered.
var errFrameTooLarge = fmt.Errorf("wire: frame exceeds %d-byte limit", maxFrame)

// frameEncoder pairs a reusable buffer with a JSON encoder so the
// per-frame encode allocation is paid once per pooled encoder, not once
// per message. json.Encoder.Encode appends the trailing newline, which
// is exactly the JSON wire framing. bin is the binary-codec scratch,
// reused the same way.
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
	bin []byte
}

var encoderPool = sync.Pool{New: func() any {
	fe := &frameEncoder{}
	fe.enc = json.NewEncoder(&fe.buf)
	return fe
}}

// WriteMessage frames and sends one message as JSON. Kept as the
// public single-shot API: JSON is readable by every peer vintage.
func WriteMessage(w *bufio.Writer, m Message) error {
	return writeMessage(w, m, CodecJSON)
}

// WriteMessageCodec frames and sends one message under an explicit codec
// version (CodecJSON or CodecBinary) — the codec-pinned counterpart of
// WriteMessage for tools that speak a known-good version, like the bench
// harness and corpus generators. Persistent connections negotiate
// instead (see Transport).
func WriteMessageCodec(w *bufio.Writer, m Message, codec uint8) error {
	return writeMessage(w, m, codec)
}

// writeMessage frames and sends one message under the given codec.
// Binary falls back to JSON for messages the binary layout cannot carry
// (unknown type, unmarshalable stats) — readers auto-detect per frame,
// so the mix is safe on one connection.
func writeMessage(w *bufio.Writer, m Message, codec uint8) error {
	fe := encoderPool.Get().(*frameEncoder)
	defer encoderPool.Put(fe)
	if codec >= CodecBinary {
		if buf, ok := appendMessageBinary(fe.bin[:0], &m); ok {
			fe.bin = buf[:0]
			if len(buf)-binHeaderLen > maxFrame {
				return errFrameTooLarge
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
			return w.Flush()
		}
	}
	fe.buf.Reset()
	if err := fe.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if _, err := w.Write(fe.buf.Bytes()); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one newline-delimited frame into scratch (grown as
// needed and returned for reuse). The size cap is enforced on the read
// itself: the frame is rejected as soon as maxFrame bytes accumulate
// without a newline, so a misbehaving peer cannot force the reader to
// buffer an unbounded line before the check runs.
func readFrame(r *bufio.Reader, scratch []byte) ([]byte, error) {
	line := scratch[:0]
	for {
		frag, err := r.ReadSlice('\n')
		if len(line)+len(frag) > maxFrame {
			return nil, errFrameTooLarge
		}
		line = append(line, frag...)
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, err
		}
	}
}

// ReadMessage reads one frame of either codec — the first byte
// classifies it (binary frames open with 0xBF, JSON frames with '{').
// Frames above 1 MiB are rejected mid-read to bound memory against
// misbehaving peers.
func ReadMessage(r *bufio.Reader) (Message, error) {
	var st decodeState
	return readMessageInto(r, &st)
}

// readMessageInto is ReadMessage with an explicit per-connection decode
// state (scratch buffer, intern table, last-seen codec), reused across
// frames by the persistent-connection read loops.
func readMessageInto(r *bufio.Reader, st *decodeState) (Message, error) {
	first, err := r.Peek(1)
	if err != nil {
		return Message{}, err
	}
	if first[0] == binMagic {
		return readMessageBinary(r, st)
	}
	line, err := readFrame(r, st.scratch)
	if line != nil {
		st.scratch = line[:0]
	}
	if err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal: %w", err)
	}
	st.codec = CodecJSON
	return m, nil
}

// roundTrip dials addr, sends req, and reads one response.
func roundTrip(addr string, req Message, timeout time.Duration) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Message{}, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return Message{}, err
	}
	bw := bufio.NewWriter(conn)
	if err := WriteMessage(bw, req); err != nil {
		return Message{}, err
	}
	resp, err := ReadMessage(bufio.NewReader(conn))
	if err != nil {
		return Message{}, err
	}
	// Protocol-level failures are permanent: the peer is reachable and
	// answering, so retrying the identical request cannot help.
	if resp.Type == MsgError {
		return resp, permanent(fmt.Errorf("wire: remote error: %s", resp.Err))
	}
	if resp.Seq != req.Seq {
		return resp, permanent(fmt.Errorf("wire: response seq %d for request %d", resp.Seq, req.Seq))
	}
	return resp, nil
}

// The client helpers below take an optional trailing RetryPolicy; without
// one they perform a single attempt. Transport failures retry under the
// policy (capped exponential backoff, full jitter); protocol errors never
// retry.

// Ping measures the RTT to addr with one request/response round trip. The
// returned RTT times only the successful attempt.
func Ping(addr string, timeout time.Duration, policy ...RetryPolicy) (time.Duration, error) {
	var rtt time.Duration
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		start := time.Now()
		resp, err := roundTrip(addr, Message{Type: MsgPing, Seq: 1}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgPong {
			return permanent(fmt.Errorf("wire: unexpected response %q to ping", resp.Type))
		}
		rtt = time.Since(start)
		return nil
	})
	return rtt, err
}

// Store publishes a record to the peer at addr.
func Store(addr string, rec Record, timeout time.Duration, policy ...RetryPolicy) error {
	return withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgStore, Seq: 2, Record: &rec}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgStored {
			return permanent(fmt.Errorf("wire: unexpected response %q to store", resp.Type))
		}
		return nil
	})
}

// Query asks the peer at addr for up to max records nearest to number.
func Query(addr string, number uint64, max int, timeout time.Duration, policy ...RetryPolicy) ([]Record, error) {
	var recs []Record
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgQuery, Seq: 3, Number: number, Max: max}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRecords {
			return permanent(fmt.Errorf("wire: unexpected response %q to query", resp.Type))
		}
		recs = resp.Records
		return nil
	})
	return recs, err
}

// Remove withdraws the record identified by recordAddr from the peer at
// addr (the proactive-departure case of §5.2: a node leaving gracefully
// deletes its soft-state instead of letting it expire). Removing an
// absent record succeeds — the goal state already holds.
func Remove(addr, recordAddr string, timeout time.Duration, policy ...RetryPolicy) error {
	return withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgRemove, Seq: 5, Addr: recordAddr}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgRemoved {
			return permanent(fmt.Errorf("wire: unexpected response %q to remove", resp.Type))
		}
		return nil
	})
}

// FetchPeers asks the node at addr for its current peer ring and the
// ring epoch it belongs to. The list is the membership the node actually
// routes on — after a reconfiguration every node converges to the same
// list and epoch, so comparing answers across a fleet detects drift.
func FetchPeers(addr string, timeout time.Duration, policy ...RetryPolicy) ([]string, uint64, error) {
	var peers []string
	var epoch uint64
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgPeers, Seq: 6}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgPeersReply {
			return permanent(fmt.Errorf("wire: unexpected response %q to peers", resp.Type))
		}
		peers, epoch = resp.Peers, resp.Epoch
		return nil
	})
	return peers, epoch, err
}

// FetchStats scrapes the telemetry snapshot of the peer at addr through
// the STATS wire op.
func FetchStats(addr string, timeout time.Duration, policy ...RetryPolicy) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := withRetry(optPolicy(policy), nil, nil, func() error {
		resp, err := roundTrip(addr, Message{Type: MsgStats, Seq: 4}, timeout)
		if err != nil {
			return err
		}
		if resp.Type != MsgStatsReply || resp.Stats == nil {
			return permanent(fmt.Errorf("wire: unexpected response %q to stats", resp.Type))
		}
		snap = *resp.Stats
		return nil
	})
	return snap, err
}
