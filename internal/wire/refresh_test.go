package wire

import (
	"testing"
	"time"
)

func TestStartRefreshKeepsRecordAlive(t *testing.T) {
	// Short TTL + refresh loop: the record must survive past several TTLs.
	nodes := cluster(t, 3, 2)
	target := nodes[2]
	target.ttl = 120 * time.Millisecond
	if _, err := target.Publish(1, testTimeout); err != nil {
		t.Fatal(err)
	}
	target.StartRefresh(40*time.Millisecond, 1, testTimeout)

	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	// Query the owner: the record must still be live.
	vec, err := target.MeasureVector(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	num, err := target.cfg.Number(vec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Query(target.OwnerOf(num), num, 16, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Addr == target.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatal("record expired despite refresh loop")
	}
}

func TestWithoutRefreshRecordExpires(t *testing.T) {
	nodes := cluster(t, 3, 2)
	target := nodes[2]
	target.ttl = 60 * time.Millisecond
	rec, err := target.Publish(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	recs, err := Query(target.OwnerOf(rec.Number), rec.Number, 16, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Addr == target.Addr() {
			t.Fatal("record survived its TTL with no refresh")
		}
	}
}

func TestCloseStopsRefresh(t *testing.T) {
	nodes := cluster(t, 2, 1)
	n := nodes[1]
	n.StartRefresh(10*time.Millisecond, 1, testTimeout)
	if err := n.Close(); err != nil {
		t.Fatal(err) // must not hang on the refresh goroutine
	}
}

func TestStartRefreshDefaultInterval(t *testing.T) {
	nodes := cluster(t, 2, 1)
	n := nodes[1]
	n.StartRefresh(0, 1, testTimeout) // derives interval from TTL
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
