package wire

import (
	"testing"
	"time"
)

func TestStartRefreshKeepsRecordAlive(t *testing.T) {
	// Short TTL + refresh loop: the record must survive past several TTLs.
	nodes := cluster(t, 3, 2)
	target := nodes[2]
	target.ttl = 120 * time.Millisecond
	if _, err := target.Publish(1, testTimeout); err != nil {
		t.Fatal(err)
	}
	target.StartRefresh(40*time.Millisecond, 1, testTimeout)

	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	// Query the owner: the record must still be live.
	vec, err := target.MeasureVector(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	num, err := target.cfg.Number(vec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Query(target.OwnerOf(num), num, 16, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Addr == target.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatal("record expired despite refresh loop")
	}
}

func TestWithoutRefreshRecordExpires(t *testing.T) {
	nodes := cluster(t, 3, 2)
	target := nodes[2]
	target.ttl = 60 * time.Millisecond
	rec, err := target.Publish(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	recs, err := Query(target.OwnerOf(rec.Number), rec.Number, 16, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Addr == target.Addr() {
			t.Fatal("record survived its TTL with no refresh")
		}
	}
}

func TestCloseStopsRefresh(t *testing.T) {
	nodes := cluster(t, 2, 1)
	n := nodes[1]
	n.StartRefresh(10*time.Millisecond, 1, testTimeout)
	if err := n.Close(); err != nil {
		t.Fatal(err) // must not hang on the refresh goroutine
	}
}

func TestRefreshFailuresCounted(t *testing.T) {
	// A refresh loop whose publishes cannot succeed (unreachable landmark,
	// no prior measurement to fall back on) must count every failed tick
	// in wire_refresh_failures_total instead of dropping the error.
	cfg := testConfig([]string{"127.0.0.1:1"}) // nothing listens on port 1
	n, err := NewNode("127.0.0.1:0", cfg, nil, time.Minute,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.StartRefresh(5*time.Millisecond, 1, 50*time.Millisecond)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := n.Registry().Snapshot().Value("wire_refresh_failures_total"); v >= 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	v, _ := n.Registry().Snapshot().Value("wire_refresh_failures_total")
	t.Fatalf("wire_refresh_failures_total = %v after failing refreshes, want >= 2", v)
}

func TestStartRefreshDefaultInterval(t *testing.T) {
	nodes := cluster(t, 2, 1)
	n := nodes[1]
	n.StartRefresh(0, 1, testTimeout) // derives interval from TTL
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
