package wire

import (
	"fmt"
	"testing"
	"time"
)

// TestClusterConvergesUnderFaults is the PR's acceptance scenario: a
// 16-node cluster whose every Store/Query crosses a fault proxy injecting
// 20% connection loss, plus one crashed (non-landmark) owner node. With
// retries and replication k=2 the soft-state must converge to 100% record
// availability for the surviving nodes; the replicas written at publish
// time serve the crashed owner's shard via query failover.
func TestClusterConvergesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault-injection test")
	}
	const (
		nNodes    = 16
		nLand     = 3
		replicas  = 2
		victimIdx = 7 // never a landmark: landmarks are indices 0..2
		timeout   = time.Second
	)
	retry := RetryPolicy{MaxAttempts: 6, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

	// Reserve real addresses.
	boot := make([]*Node, nNodes)
	addrs := make([]string, nNodes)
	stub := testConfig([]string{"placeholder"})
	for i := range boot {
		n, err := NewNode("127.0.0.1:0", stub, nil, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		boot[i] = n
		addrs[i] = n.Addr()
	}
	// One fault proxy per node; the peer list is the proxy addresses, so
	// every store and query crosses the injector. Landmarks stay direct:
	// the scenario under test is soft-state resilience, not measurement.
	// The proxies bind their ephemeral ports while the reservation
	// listeners are still up, so the kernel cannot hand a proxy one of
	// the just-freed node ports and break the rebind below.
	proxies := make([]*FaultProxy, nNodes)
	proxyAddrs := make([]string, nNodes)
	for i, addr := range addrs {
		p, err := NewFaultProxy(addr, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		p.SetLoss(0.2)
		proxies[i] = p
		proxyAddrs[i] = p.Addr()
	}
	for _, n := range boot {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cfg := testConfig(addrs[:nLand])
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		n, err := NewNode(addrs[i], cfg, proxyAddrs, time.Minute,
			WithReplication(replicas),
			WithRetryPolicy(retry),
			WithBreaker(5, 100*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { _ = n.Close() })
	}

	// Crash one owner. Its proxy stays up, so calls to its shard fail at
	// the backend dial — the remote-crash failure mode.
	if err := nodes[victimIdx].Close(); err != nil {
		t.Fatal(err)
	}

	alive := make([]*Node, 0, nNodes-1)
	for i, n := range nodes {
		if i != victimIdx {
			alive = append(alive, n)
		}
	}

	// Counted variant of the package Query helper: the convergence loop's
	// own retries must be observable, because the package helpers meter
	// nothing and the nodes' pooled transport dials each peer only once —
	// a run can converge with every node-side connection intact while the
	// injector drops plenty of test-side dials.
	testRetries := 0
	queryCounted := func(addr string, number uint64) ([]Record, error) {
		var recs []Record
		err := withRetry(retry, func() { testRetries++ }, nil, func() error {
			resp, err := roundTrip(addr, Message{Type: MsgQuery, Seq: 3, Number: number, Max: nNodes * replicas}, timeout)
			if err != nil {
				return err
			}
			if resp.Type != MsgRecords {
				return permanent(fmt.Errorf("unexpected response %q to query", resp.Type))
			}
			recs = resp.Records
			return nil
		})
		return recs, err
	}

	// Converge: publish (tolerating transient failures) and measure
	// record availability until every surviving node's record is
	// retrievable from its owner list.
	records := make(map[*Node]Record, len(alive))
	deadline := time.Now().Add(20 * time.Second)
	for {
		for _, n := range alive {
			if rec, err := n.Publish(1, timeout); err == nil {
				records[n] = rec
			}
		}
		found := 0
		for _, n := range alive {
			rec, ok := records[n]
			if !ok {
				continue
			}
			owners := alive[0].OwnersOf(rec.Number, replicas)
			for _, owner := range owners {
				got, err := queryCounted(owner, rec.Number)
				if err != nil {
					continue
				}
				for _, r := range got {
					if r.Addr == n.Addr() {
						found++
						goto next
					}
				}
			}
		next:
		}
		if found == len(alive) {
			break // 100% availability
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d records available under faults", found, len(alive))
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The failure machinery must actually have been exercised: loss fired
	// at the injector and the retry layer absorbed it. If the seeded
	// stream happened to spare every connection so far, push more traffic
	// through the injector until a drop demonstrably occurred — the point
	// is to prove drops translate into absorbed retries, not to bet on
	// which connections the stream hits.
	sumDropped := func() int64 {
		var n int64
		for _, p := range proxies {
			n += p.Dropped()
		}
		return n
	}
	for probeDeadline := time.Now().Add(10 * time.Second); sumDropped() == 0; {
		if time.Now().After(probeDeadline) {
			t.Fatal("20% loss dropped zero connections — the injector is not in the path")
		}
		_, _ = queryCounted(proxyAddrs[0], records[alive[0]].Number)
	}
	totalRetries := testRetries
	for _, n := range alive {
		snap := n.Registry().Snapshot()
		if f, ok := snap.Family("wire_retries_total"); ok {
			for _, s := range f.Series {
				totalRetries += int(s.Value)
			}
		}
	}
	if totalRetries == 0 {
		t.Fatal("injected connection drops produced zero retries — the retry layer is not absorbing faults")
	}

	// Query failover end to end: a node whose primary owner is the victim
	// still resolves candidates through the replica.
	for _, n := range alive {
		rec, ok := records[n]
		if !ok {
			continue
		}
		if alive[0].OwnersOf(rec.Number, 1)[0] == proxyAddrs[victimIdx] {
			if _, _, err := n.FindNearest(3, timeout); err != nil {
				t.Fatalf("FindNearest with crashed primary owner: %v", err)
			}
			return
		}
	}
	// No record happened to land on the victim's slot — the availability
	// check above still covered replication; nothing more to assert.
}
