package wire

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"gsso/internal/obs"
)

// RetryPolicy is capped exponential backoff with full jitter: the wait
// before re-attempt n is uniform in [0, min(MaxDelay, BaseDelay*2^(n-1))].
// MaxAttempts bounds the total attempts of one call (1 = no retries).
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy is the node default: three attempts, 25 ms base,
// 500 ms cap. A transient connection loss heals within one call without
// stretching a healthy call at all (the first attempt carries no wait).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
}

// normalized fills zero fields with usable values.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// delay returns the backoff after the attempt-th failure (1-based), with
// u the jitter draw in [0, 1).
func (p RetryPolicy) delay(attempt int, u float64) time.Duration {
	ceil := p.MaxDelay
	if attempt < 32 {
		if exp := p.BaseDelay << (attempt - 1); exp < ceil && exp > 0 {
			ceil = exp
		}
	}
	return time.Duration(u * float64(ceil))
}

// permanentError marks failures retrying cannot fix: the remote answered,
// it just answered no (protocol errors, unexpected response types).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// permanent wraps err as non-retryable.
func permanent(err error) error { return &permanentError{err: err} }

// isPermanent reports whether err (or anything it wraps) is permanent.
func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// withRetry runs op under pol. onRetry (nil ok) fires before each
// re-attempt; stop (nil ok) aborts the backoff wait. Permanent errors
// return immediately.
func withRetry(pol RetryPolicy, onRetry func(), stop <-chan struct{}, op func() error) error {
	pol = pol.normalized()
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || isPermanent(err) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			if pol.MaxAttempts > 1 {
				return fmt.Errorf("wire: %d attempts failed: %w", attempt, err)
			}
			return err
		}
		if onRetry != nil {
			onRetry()
		}
		if d := pol.delay(attempt, rand.Float64()); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return fmt.Errorf("wire: closed during retry: %w", err)
			}
		}
	}
}

// optPolicy resolves the optional trailing RetryPolicy of the package
// helpers; absent means single-attempt, the pre-resilience behavior.
func optPolicy(p []RetryPolicy) RetryPolicy {
	if len(p) > 0 {
		return p[0]
	}
	return RetryPolicy{MaxAttempts: 1}
}

// Failure-detector states, in the order exposed by the
// wire_breaker_state gauge.
const (
	breakerClosed   = 0 // healthy: calls flow
	breakerHalfOpen = 1 // cooled down: one probe call in flight
	breakerOpen     = 2 // tripped: calls fail fast
)

// breaker is a per-peer consecutive-failure circuit breaker with half-open
// probing: threshold consecutive call failures open it, open calls fail
// fast for cooldown, then a single probe call is let through — its outcome
// closes or re-opens the breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration
	gauge     *obs.Gauge // wire_breaker_state{peer}; may be nil in tests
	peer      string
	// sink observes open/close transitions (open=true on trip, false on
	// recovery). It is the wire layer's live-mode failure-detection feed:
	// deployments forward trips as suspicion signals (the analogue of
	// core.SuspectMember). Called under the breaker's lock — keep it fast
	// and never call back into the breaker.
	sink func(peer string, open bool)

	mu    sync.Mutex
	state int
	fails int
	until time.Time // open expiry
}

func newBreaker(threshold int, cooldown time.Duration, gauge *obs.Gauge) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, gauge: gauge}
}

// allow reports whether a call may proceed now. In the open state the
// first caller past the cooldown becomes the half-open probe; everyone
// else keeps failing fast until the probe settles.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false
	default:
		if !now.Before(b.until) {
			b.set(breakerHalfOpen)
			return true
		}
		return false
	}
}

// success records a completed call and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.set(breakerClosed)
}

// failure records a failed call; it (re-)opens the breaker when the
// consecutive-failure budget is spent or the half-open probe failed.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.set(breakerOpen)
		b.until = now.Add(b.cooldown)
	}
}

func (b *breaker) set(state int) {
	prev := b.state
	b.state = state
	if b.gauge != nil {
		b.gauge.Set(float64(state))
	}
	if b.sink != nil && (prev == breakerOpen) != (state == breakerOpen) {
		b.sink(b.peer, state == breakerOpen)
	}
}

// snapshot returns the current state for tests and introspection.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
