package wire

import (
	"errors"
	"testing"
	"time"
)

func TestRetryPolicyDelayJitterAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	// Full jitter: u=0 gives zero wait, u→1 approaches the ceiling.
	if d := p.delay(1, 0); d != 0 {
		t.Fatalf("delay(1, 0) = %v", d)
	}
	if d := p.delay(1, 0.999); d > 10*time.Millisecond {
		t.Fatalf("attempt-1 ceiling exceeded: %v", d)
	}
	// Exponential growth: attempt 2 ceiling is 20ms, attempt 3 40ms.
	if d := p.delay(2, 0.999); d <= 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("attempt-2 delay = %v", d)
	}
	// Capped: attempt 10 would be 10ms<<9 without the cap.
	if d := p.delay(10, 0.999); d > 40*time.Millisecond {
		t.Fatalf("cap exceeded: %v", d)
	}
	// Huge attempt numbers must not overflow the shift.
	if d := p.delay(400, 0.5); d > 40*time.Millisecond {
		t.Fatalf("overflow at large attempt: %v", d)
	}
}

func TestWithRetryStopsOnSuccessAndBudget(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	calls, retries := 0, 0
	err := withRetry(pol, func() { retries++ }, nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("err=%v calls=%d retries=%d", err, calls, retries)
	}

	calls = 0
	err = withRetry(pol, nil, nil, func() error { calls++; return errors.New("always") })
	if err == nil || calls != 3 {
		t.Fatalf("budget not honored: err=%v calls=%d", err, calls)
	}
}

func TestWithRetryPermanentShortCircuits(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	calls := 0
	sentinel := errors.New("remote said no")
	err := withRetry(pol, nil, nil, func() error { calls++; return permanent(sentinel) })
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("permanent wrapper hides the cause: %v", err)
	}
}

func TestWithRetryAbortsOnStop(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	err := withRetry(pol, nil, stop, func() error { return errors.New("x") })
	if err == nil {
		t.Fatal("stopped retry returned success")
	}
	if time.Since(start) > time.Second {
		t.Fatal("stop did not abort the backoff wait")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond, nil)
	now := time.Now()

	// Closed: calls flow; failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatal("closed breaker blocked a call")
		}
		b.failure(now)
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("opened below threshold")
	}
	// Third consecutive failure trips it.
	b.failure(now)
	if b.snapshot() != breakerOpen {
		t.Fatal("threshold did not open the breaker")
	}
	if b.allow(now) {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	// After the cooldown exactly one probe goes through; others fail fast.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatal("probe did not move the breaker to half-open")
	}
	if b.allow(later) {
		t.Fatal("second caller slipped through half-open")
	}
	// A failed probe re-opens with a fresh cooldown.
	b.failure(later)
	if b.snapshot() != breakerOpen || b.allow(later.Add(10*time.Millisecond)) {
		t.Fatal("failed probe did not re-open")
	}
	// A successful probe closes and resets the failure count.
	relater := later.Add(60 * time.Millisecond)
	if !b.allow(relater) {
		t.Fatal("re-cooled breaker refused the probe")
	}
	b.success()
	if b.snapshot() != breakerClosed {
		t.Fatal("success did not close the breaker")
	}
	b.failure(relater)
	b.failure(relater)
	if b.snapshot() != breakerClosed {
		t.Fatal("failure count survived the success reset")
	}
}

func TestNodeBreakerTripsAndRecovers(t *testing.T) {
	// A node dialing a dead peer trips its breaker after threshold calls,
	// then fails fast, and the wire_breaker_state gauge tracks it.
	nodes := cluster(t, 2, 1)
	n := nodes[0]
	n.opt.retry = RetryPolicy{MaxAttempts: 1}
	n.opt.breakerThreshold = 2
	n.opt.breakerCooldown = 50 * time.Millisecond
	dead := "127.0.0.1:1"

	for i := 0; i < 2; i++ {
		if err := n.store(dead, Record{Addr: "x"}, 200*time.Millisecond); err == nil {
			t.Fatal("store to dead peer succeeded")
		}
	}
	if err := n.store(dead, Record{Addr: "x"}, 200*time.Millisecond); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("tripped breaker did not fail fast: %v", err)
	}
	if v, ok := n.Registry().Snapshot().Value("wire_breaker_state", dead); !ok || v != breakerOpen {
		t.Fatalf("wire_breaker_state{%s} = %v/%v, want %v", dead, v, ok, breakerOpen)
	}
	// After the cooldown the half-open probe reaches a live peer and the
	// breaker closes again (reuse the breaker against a live address).
	time.Sleep(60 * time.Millisecond)
	br := n.breakerFor(dead)
	if !br.allow(time.Now()) {
		t.Fatal("no half-open probe after cooldown")
	}
	br.success()
	if br.snapshot() != breakerClosed {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestRetriesMetricCounted(t *testing.T) {
	nodes := cluster(t, 2, 1)
	n := nodes[0]
	n.opt.retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if err := n.store("127.0.0.1:1", Record{Addr: "x"}, 100*time.Millisecond); err == nil {
		t.Fatal("store to dead peer succeeded")
	}
	if v, _ := n.Registry().Snapshot().Value("wire_retries_total", "store"); v != 2 {
		t.Fatalf("wire_retries_total{store} = %v, want 2", v)
	}
}
