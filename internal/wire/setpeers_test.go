package wire

import (
	"slices"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSetPeersSwapsRingAndRehomes walks the full reconfiguration path:
// a node leaves the membership, every survivor swaps its ring, and the
// departed node's shard is handed off so recall survives without
// waiting out the TTL.
func TestSetPeersSwapsRingAndRehomes(t *testing.T) {
	nodes := cluster(t, 5, 2)
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	recs := make([]Record, len(nodes))
	for i, nd := range nodes {
		rec, err := nd.Publish(1, testTimeout)
		if err != nil {
			t.Fatalf("publish node %d: %v", i, err)
		}
		recs[i] = rec
	}
	if got := nodes[0].RingEpoch(); got != 1 {
		t.Fatalf("boot epoch = %d, want 1", got)
	}

	// Drop the last node from the membership, pushing the new list to
	// everyone — the victim included, so its shard re-homes.
	next := slices.Sorted(slices.Values(addrs[:4]))
	for i, nd := range nodes {
		epoch, err := nd.SetPeers(next, testTimeout)
		if err != nil {
			t.Fatalf("SetPeers node %d: %v", i, err)
		}
		if epoch != 2 {
			t.Fatalf("SetPeers node %d epoch = %d, want 2", i, epoch)
		}
	}
	// Idempotence: the same list again must not bump the epoch.
	if epoch, err := nodes[0].SetPeers(slices.Clone(next), testTimeout); err != nil || epoch != 2 {
		t.Fatalf("no-op SetPeers = (%d, %v), want (2, nil)", epoch, err)
	}
	if _, err := nodes[0].SetPeers(nil, testTimeout); err == nil {
		t.Fatal("SetPeers accepted an empty list")
	}

	// The victim handed its whole shard off.
	if got := nodes[4].RecordCount(); got != 0 {
		t.Fatalf("removed node still holds %d records", got)
	}
	// Zero orphans: every record a survivor holds is one it owns under
	// the new ring.
	for i, nd := range nodes[:4] {
		nd.mu.Lock()
		held := make([]Record, 0, len(nd.records))
		for _, rec := range nd.records {
			held = append(held, rec)
		}
		nd.mu.Unlock()
		for _, rec := range held {
			if !slices.Contains(nd.OwnersOf(rec.Number, nd.Replication()), nd.Addr()) {
				t.Fatalf("node %d holds record %s it does not own", i, rec.Addr)
			}
		}
	}
	// Full recall for the survivors' records: every new-ring owner holds
	// a copy (the departed node's own record may legitimately linger
	// until it withdraws; survivors re-published theirs on the swap).
	for i, rec := range recs[:4] {
		for _, owner := range nodes[0].OwnersOf(rec.Number, nodes[0].Replication()) {
			j := slices.Index(addrs, owner)
			nodes[j].mu.Lock()
			_, ok := nodes[j].records[rec.Addr]
			nodes[j].mu.Unlock()
			if !ok {
				t.Fatalf("record of node %d missing on new owner %s", i, owner)
			}
		}
	}

	// The membership RPC reports the new ring.
	peers, epoch, err := FetchPeers(addrs[0], testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || !slices.Equal(peers, next) {
		t.Fatalf("FetchPeers = (%v, %d), want (%v, 2)", peers, epoch, next)
	}
}

// TestSetPeersEvictsRemovedPeer checks the client-side cleanup of a
// swap: pooled connections and the breaker of a peer that left the ring
// are discarded, not left to rot against a decommissioned address.
func TestSetPeersEvictsRemovedPeer(t *testing.T) {
	nodes := cluster(t, 3, 2)
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	gone := addrs[2]
	if _, err := nodes[0].ping(gone, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].tr.Open(gone) == 0 {
		t.Fatal("ping left no pooled connection")
	}
	if _, err := nodes[0].SetPeers(addrs[:2], testTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, testTimeout, "pool eviction", func() bool {
		return nodes[0].tr.Open(gone) == 0
	})
	nodes[0].bmu.Lock()
	_, ok := nodes[0].breakers[gone]
	nodes[0].bmu.Unlock()
	if ok {
		t.Fatal("breaker for removed peer survived the swap")
	}
	// A kept peer's state is untouched.
	want := slices.Sorted(slices.Values(addrs[:2]))
	if !slices.Equal(nodes[0].Peers(), want) {
		t.Fatalf("Peers() = %v, want %v", nodes[0].Peers(), want)
	}
}

// TestSetPeersConcurrentHammer drives ring swaps concurrently with
// in-flight RPCs, batched publishes, and breaker churn, then settles
// and asserts the invariants that matter after the dust: publishes land
// on the final ring's owners, the removed peer's pool and breaker are
// gone, and nothing deadlocked (the test finishing is that assertion).
// Run under -race, this is the memory-safety gate for the atomic swap.
func TestSetPeersConcurrentHammer(t *testing.T) {
	fast := RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	nodes := cluster(t, 6, 2, WithRetryPolicy(fast), WithBatchWindow(2*time.Millisecond))
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	full := slices.Sorted(slices.Values(addrs))        // membership A: everyone
	trimmed := slices.Sorted(slices.Values(addrs[:5])) // membership B: last node dropped

	var wg sync.WaitGroup
	stop := make(chan struct{})
	work := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	// Flip the ring on every node, hot.
	for _, nd := range nodes {
		nd := nd
		i := 0
		work(func() {
			if i%2 == 0 {
				_, _ = nd.SetPeers(trimmed, 50*time.Millisecond)
			} else {
				_, _ = nd.SetPeers(full, 50*time.Millisecond)
			}
			i++
		})
	}
	// Synchronous and batched publishes race the swaps.
	work(func() { _, _ = nodes[0].Publish(1, 50*time.Millisecond) })
	work(func() { _, _ = nodes[1].publishBatched(1, 50*time.Millisecond) })
	// Queries and pings keep the transport pools and breakers hot,
	// including against the address being evicted.
	work(func() { _, _ = nodes[2].query(addrs[5], 42, 4, 50*time.Millisecond) })
	work(func() { _, _ = nodes[3].ping(addrs[5], 50*time.Millisecond) })
	// Breaker churn racing the swap's breaker deletion.
	work(func() { nodes[0].breakerFor(addrs[5]).failure(time.Now()) })

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Settle on the trimmed membership everywhere. The detour through the
	// full list forces a real swap on every node regardless of where the
	// hammer left it, so the eviction path runs once more with no racing
	// traffic to re-create pools or breakers behind it.
	for i, nd := range nodes {
		if _, err := nd.SetPeers(full, testTimeout); err != nil {
			t.Fatalf("settle SetPeers node %d: %v", i, err)
		}
		if _, err := nd.SetPeers(trimmed, testTimeout); err != nil {
			t.Fatalf("settle SetPeers node %d: %v", i, err)
		}
		if !slices.Equal(nd.Peers(), trimmed) {
			t.Fatalf("node %d ring = %v after settle", i, nd.Peers())
		}
	}
	// No wrong-ring publishes once settled: a fresh publish lands on
	// exactly the trimmed ring's owners.
	rec, err := nodes[0].Publish(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	owners := nodes[0].OwnersOf(rec.Number, nodes[0].Replication())
	for _, owner := range owners {
		if !slices.Contains(trimmed, owner) {
			t.Fatalf("owner %s outside the settled ring", owner)
		}
		j := slices.Index(addrs, owner)
		nodes[j].mu.Lock()
		_, ok := nodes[j].records[rec.Addr]
		nodes[j].mu.Unlock()
		if !ok {
			t.Fatalf("settled publish missing on owner %s", owner)
		}
	}
	// The dropped peer's client-side state is fully evicted.
	waitFor(t, testTimeout, "pool eviction", func() bool {
		for _, nd := range nodes[:5] {
			if nd.tr.Open(addrs[5]) != 0 {
				return false
			}
		}
		return true
	})
	for i, nd := range nodes[:5] {
		nd.bmu.Lock()
		_, ok := nd.breakers[addrs[5]]
		nd.bmu.Unlock()
		if ok {
			t.Fatalf("node %d kept a breaker for the dropped peer", i)
		}
	}
}
