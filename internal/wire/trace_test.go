package wire

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"gsso/internal/obs/span"
)

// TestTraceFieldCompat pins the wire-compat contract of the trace field:
// old frames (no trace) decode to a nil context, frames from newer
// builds with unknown fields still decode (so mixed-version clusters
// interoperate), and a present context round-trips bit-exact.
func TestTraceFieldCompat(t *testing.T) {
	decode := func(s string) Message {
		t.Helper()
		m, err := ReadMessage(bufio.NewReader(strings.NewReader(s)))
		if err != nil {
			t.Fatalf("decode %q: %v", s, err)
		}
		return m
	}

	// Backward: a pre-tracing peer's frame carries no trace.
	if m := decode("{\"type\":\"ping\",\"seq\":1}\n"); m.Trace != nil {
		t.Fatalf("traceless frame decoded Trace=%+v, want nil", m.Trace)
	}
	// Forward: unknown fields from a future build are ignored.
	m := decode("{\"type\":\"ping\",\"seq\":2,\"trace\":{\"trace_id\":7,\"span_id\":8,\"sampled\":true},\"future\":\"x\"}\n")
	if m.Trace == nil || m.Trace.TraceID != 7 || m.Trace.SpanID != 8 || !m.Trace.Sampled {
		t.Fatalf("trace context mis-decoded: %+v", m.Trace)
	}
	// Unsampled contexts are omitted from the encoding entirely.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteMessage(bw, Message{Type: MsgPing, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace") {
		t.Fatalf("untraced frame leaked a trace field: %s", buf.String())
	}
	// Round trip of a present context.
	buf.Reset()
	want := span.Context{TraceID: 0xdeadbeef, SpanID: 0xcafe, Sampled: true}
	if err := WriteMessage(bufio.NewWriter(&buf), Message{Type: MsgStore, Seq: 4, Trace: &want}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || *got.Trace != want {
		t.Fatalf("trace round trip: got %+v, want %+v", got.Trace, want)
	}
}

// tracedNode builds a wire node with its own 1-in-1 sampling collector.
func tracedNode(t *testing.T, listen string, cfg SpaceConfig, peers []string, opts ...NodeOption) *Node {
	t.Helper()
	col := span.NewCollector(2048, 1)
	n, err := NewNode(listen, cfg, peers, time.Minute,
		append([]NodeOption{WithTracing(col)}, opts...)...)
	if err != nil {
		t.Fatalf("node %s: %v", listen, err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestTracePropagationAcrossWire checks the basic cross-process link: a
// traced publish on one node produces serve-side spans on the replica
// owner whose parent IDs point at the publisher's client spans.
func TestTracePropagationAcrossWire(t *testing.T) {
	stub := SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := NewNode("127.0.0.1:0", stub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := SpaceConfig{Landmarks: []string{aAddr}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	b := tracedNode(t, "127.0.0.1:0", cfg, nil)
	a := tracedNode(t, aAddr, cfg, []string{aAddr, b.Addr()}, WithReplication(2))

	if _, err := a.Publish(1, 2*time.Second); err != nil {
		t.Fatalf("publish: %v", err)
	}

	aSpans := a.Spans().Snapshot()
	var root span.Span
	byID := map[uint64]span.Span{}
	for _, s := range aSpans {
		byID[s.SpanID] = s
		if s.Op == "publish" && s.Root() {
			root = s
		}
	}
	if root.SpanID == 0 {
		t.Fatalf("no publish root recorded: %+v", aSpans)
	}
	stores := 0
	for _, s := range aSpans {
		if s.Op != "store" {
			continue
		}
		stores++
		if s.TraceID != root.TraceID || s.ParentID != root.SpanID {
			t.Fatalf("store span not parented to publish root: %+v (root %+v)", s, root)
		}
	}
	if stores != 2 {
		t.Fatalf("want 2 store spans (k=2), got %d", stores)
	}

	// B continued the trace: its serve.store span parents to A's store
	// span targeting B, carrying the same trace ID across the process
	// boundary.
	var serveStore span.Span
	for _, s := range b.Spans().Snapshot() {
		if s.Op == "serve.store" {
			serveStore = s
		}
	}
	if serveStore.SpanID == 0 {
		t.Fatalf("replica owner recorded no serve.store span: %+v", b.Spans().Snapshot())
	}
	if serveStore.TraceID != root.TraceID {
		t.Fatalf("serve.store trace %x, want %x", serveStore.TraceID, root.TraceID)
	}
	parent, ok := byID[serveStore.ParentID]
	if !ok || parent.Op != "store" || parent.Peer != b.Addr() {
		t.Fatalf("serve.store parent %x does not resolve to the store span aimed at B (%+v)", serveStore.ParentID, parent)
	}
}

// TestTraceSpansUnderFaults drives a traced find-nearest through a
// failover: both ring owners sit behind fault proxies to the same
// backend, the primary drops every connection, and the resulting span
// tree must show the failed query (attempt-counted, outcome error), the
// successful failover query, and a consistent parent chain with no
// dangling IDs across both nodes' buffers.
func TestTraceSpansUnderFaults(t *testing.T) {
	stub := SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := NewNode("127.0.0.1:0", stub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := SpaceConfig{Landmarks: []string{aAddr}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}

	// B owns the shard; B publishes its own record so A has a candidate.
	bCol := span.NewCollector(2048, 1)
	b, err := NewNode("127.0.0.1:0", cfg, nil, time.Minute, WithTracing(bCol))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Seeded against B as landmark: A's listener does not exist yet.
	seedCfg := SpaceConfig{Landmarks: []string{b.Addr()}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	bSelf, err := NewNode("127.0.0.1:0", seedCfg, []string{b.Addr()}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer bSelf.Close()
	if _, err := bSelf.Publish(1, 2*time.Second); err != nil {
		t.Fatalf("seed publish: %v", err)
	}

	// Both of A's ring owners are proxies to B, so whichever the ring
	// orders first can be faulted deterministically.
	p1, err := NewFaultProxy(b.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewFaultProxy(b.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}

	pol := RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	a := tracedNode(t, aAddr, cfg, []string{p1.Addr(), p2.Addr()},
		WithReplication(2), WithRetryPolicy(pol))
	// A must close before the proxies so their pipes drain promptly.
	t.Cleanup(func() { p1.Close(); p2.Close() })

	vec, err := a.MeasureVector(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	num, err := cfg.Number(vec)
	if err != nil {
		t.Fatal(err)
	}
	primary := a.OwnerOf(num)
	for _, p := range []*FaultProxy{p1, p2} {
		if p.Addr() == primary {
			p.SetLoss(1)
		}
	}

	if _, _, err := a.FindNearest(2, 2*time.Second); err != nil {
		t.Fatalf("find-nearest should fail over to the replica owner: %v", err)
	}

	aSpans := a.Spans().Snapshot()
	var root span.Span
	for _, s := range aSpans {
		if s.Op == "find-nearest" && s.Root() {
			root = s
		}
	}
	if root.SpanID == 0 {
		t.Fatalf("no find-nearest root: %+v", aSpans)
	}
	var failed, ok []span.Span
	for _, s := range aSpans {
		if s.Op != "query" || s.TraceID != root.TraceID {
			continue
		}
		if s.ParentID != root.SpanID {
			t.Fatalf("query span not parented to root: %+v", s)
		}
		switch s.Outcome {
		case span.OutcomeOK:
			ok = append(ok, s)
		case span.OutcomeError:
			failed = append(failed, s)
		}
	}
	if len(failed) != 1 || len(ok) != 1 {
		t.Fatalf("want 1 failed + 1 successful query span, got %d failed %d ok: %+v", len(failed), len(ok), aSpans)
	}
	if failed[0].Peer != primary {
		t.Errorf("failed query aimed at %s, want faulted primary %s", failed[0].Peer, primary)
	}
	if failed[0].Attempts != pol.MaxAttempts {
		t.Errorf("failed query attempts = %d, want retry loop exhausted at %d", failed[0].Attempts, pol.MaxAttempts)
	}
	if ok[0].Attempts != 1 {
		t.Errorf("failover query attempts = %d, want 1", ok[0].Attempts)
	}

	// Cross-buffer consistency: merge both nodes' spans for this trace;
	// every non-root parent must resolve.
	all := append(a.Spans().ByTrace(root.TraceID), b.Spans().ByTrace(root.TraceID)...)
	ids := map[uint64]bool{}
	for _, s := range all {
		ids[s.SpanID] = true
	}
	serveQueries := 0
	for _, s := range all {
		if !s.Root() && !ids[s.ParentID] {
			t.Errorf("span %s on %s has dangling parent %x", s.Op, s.Node, s.ParentID)
		}
		if s.Op == "serve.query" {
			serveQueries++
		}
	}
	if serveQueries == 0 {
		t.Error("backend recorded no serve.query span for the failover trace")
	}
}

// TestTraceRingSurvivesConcurrentPublishScrape hammers a live node with
// concurrent traced publishes while scraping its span ring — the
// -race run of this test is the ring buffer's integrity gate.
func TestTraceRingSurvivesConcurrentPublishScrape(t *testing.T) {
	stub := SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := NewNode("127.0.0.1:0", stub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := SpaceConfig{Landmarks: []string{aAddr}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	b := tracedNode(t, "127.0.0.1:0", cfg, nil)
	a := tracedNode(t, aAddr, cfg, []string{aAddr, b.Addr()}, WithReplication(2))

	const publishers = 4
	var pubs sync.WaitGroup
	for i := 0; i < publishers; i++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for j := 0; j < 20; j++ {
				if _, err := a.Publish(1, 2*time.Second); err != nil {
					t.Errorf("publish under hammer: %v", err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range a.Spans().Snapshot() {
					if s.Outcome == "" {
						t.Error("scraped a torn span: empty outcome")
						return
					}
				}
				b.Spans().Snapshot()
			}
		}
	}()
	pubs.Wait()
	close(stop)
	scraper.Wait()
	if len(a.Spans().Snapshot()) == 0 {
		t.Fatal("hammer recorded no spans")
	}
}
