package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is a persistent, multiplexed connection pool. It keeps up to
// size connections per peer and lets any number of concurrent requests
// share them: each request is stamped with a connection-unique Seq, the
// per-connection read loop matches responses back to waiters by that
// Seq, so callers never serialize behind each other's round trips.
//
// Failure handling composes with the resilience layer above it: any
// transport error (write failure, decode failure, request timeout)
// closes the connection and fails every request in flight on it, so a
// retry naturally reopens a fresh connection; Evict drops every pooled
// connection to a peer and is called when the peer's circuit breaker
// opens, so a crashed peer's stale connections are not retried forever.
//
// Trace propagation is frame-level: the transport stamps only Seq and
// never touches Message.Trace, so the caller's trace context rides every
// multiplexed frame unchanged and retried attempts re-send the same
// context (one client span per call, attempt-counted, not one per try).
type Transport struct {
	size int
	m    *transportMetrics
	// maxCodec is the highest codec version this side will speak. Every
	// connection starts as JSON; while below maxCodec, outgoing frames
	// advertise it in Message.Codec, and an echoed advertisement on a
	// response upgrades the connection to binary for all later frames
	// (see protocol.go). Peers that never echo keep the connection JSON.
	maxCodec uint8

	mu     sync.Mutex
	peers  map[string]*peerPool
	closed bool
}

// peerPool is the per-peer connection set. dialing counts in-flight
// dials so concurrent callers do not overshoot the pool size, while the
// dial itself happens outside the lock (a blackholed peer must not
// stall calls to healthy ones).
type peerPool struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals dial completion to callers waiting on an empty pool
	conns   []*pconn
	rr      int
	dialing int
}

// NewTransport creates a standalone pool keeping up to size connections
// per peer (minimum 1). Nodes build their own transport wired to their
// telemetry registry; a bare one is useful for clients and tests. The
// transport negotiates up to the binary codec; negotiation degrades to
// JSON against peers that never echo the advertisement, so this is safe
// against any peer vintage.
func NewTransport(size int) *Transport {
	return newTransport(size, nil, CodecBinary)
}

func newTransport(size int, m *transportMetrics, maxCodec uint8) *Transport {
	if size < 1 {
		size = 1
	}
	if maxCodec < CodecJSON {
		maxCodec = CodecJSON
	}
	return &Transport{size: size, m: m, maxCodec: maxCodec, peers: make(map[string]*peerPool)}
}

// errTransportClosed fails calls through a closed transport.
var errTransportClosed = errors.New("wire: transport closed")

// RoundTrip sends req to addr on a pooled connection and returns the
// matching response. req.Seq is assigned by the transport; the caller's
// value is ignored. Remote MsgError responses return a permanent error
// alongside the response, mirroring the dial-per-call helpers.
func (t *Transport) RoundTrip(addr string, req Message, timeout time.Duration) (Message, error) {
	resp, _, err := t.roundTripRTT(addr, req, timeout)
	return resp, err
}

// roundTripRTT is RoundTrip plus the request's wire round-trip time,
// measured from frame write to response arrival on the established
// connection — dial cost, when a dial was needed, is excluded. Ping uses
// this so landmark vectors keep reflecting true network RTT.
func (t *Transport) roundTripRTT(addr string, req Message, timeout time.Duration) (Message, time.Duration, error) {
	pc, err := t.get(addr, timeout)
	if err != nil {
		return Message{}, 0, err
	}
	return pc.do(req, timeout)
}

// get returns a pooled connection to addr, dialing a new one while the
// pool is below size.
func (t *Transport) get(addr string, timeout time.Duration) (*pconn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errTransportClosed
	}
	pp := t.peers[addr]
	if pp == nil {
		pp = &peerPool{}
		pp.cond = sync.NewCond(&pp.mu)
		t.peers[addr] = pp
	}
	t.mu.Unlock()

	pp.mu.Lock()
	for {
		if len(pp.conns) > 0 && len(pp.conns)+pp.dialing >= t.size {
			pc := pp.conns[pp.rr%len(pp.conns)]
			pp.rr++
			pp.mu.Unlock()
			t.m.reuse()
			return pc, nil
		}
		if len(pp.conns)+pp.dialing < t.size {
			break
		}
		// Pool empty and every slot is mid-dial: wait for one to land
		// rather than overshoot the pool size.
		pp.cond.Wait()
	}
	pp.dialing++
	pp.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr, timeout)
	pp.mu.Lock()
	pp.dialing--
	pp.cond.Broadcast()
	if err != nil {
		pp.mu.Unlock()
		return nil, err
	}
	pc := &pconn{
		t:        t,
		addr:     addr,
		c:        c,
		bw:       bufio.NewWriter(c),
		maxCodec: t.maxCodec,
		waiters:  make(map[uint64]chan Message),
	}
	pc.codec.Store(uint32(CodecJSON))
	pp.conns = append(pp.conns, pc)
	pp.mu.Unlock()
	t.m.dialed()
	t.m.codecOpen(CodecJSON)
	go pc.readLoop()

	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		pc.fail(errTransportClosed)
		return nil, errTransportClosed
	}
	return pc, nil
}

// drop removes a failed connection from its peer's pool.
func (t *Transport) drop(pc *pconn) {
	t.mu.Lock()
	pp := t.peers[pc.addr]
	t.mu.Unlock()
	if pp == nil {
		return
	}
	pp.mu.Lock()
	for i, c := range pp.conns {
		if c == pc {
			pp.conns = append(pp.conns[:i], pp.conns[i+1:]...)
			t.m.dropped()
			t.m.codecClose(uint8(pc.codec.Load()))
			break
		}
	}
	pp.mu.Unlock()
}

// Evict closes every pooled connection to addr. The node calls it when
// the peer's circuit breaker opens: a crashed peer's stale connections
// must be torn down, not handed to the half-open probe.
func (t *Transport) Evict(addr string) {
	t.mu.Lock()
	pp := t.peers[addr]
	t.mu.Unlock()
	if pp == nil {
		return
	}
	pp.mu.Lock()
	conns := append([]*pconn(nil), pp.conns...)
	pp.mu.Unlock()
	for _, pc := range conns {
		pc.fail(fmt.Errorf("wire: connection to %s evicted", addr))
	}
}

// Open reports how many pooled connections to addr are currently open.
func (t *Transport) Open(addr string) int {
	t.mu.Lock()
	pp := t.peers[addr]
	t.mu.Unlock()
	if pp == nil {
		return 0
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return len(pp.conns)
}

// Close evicts every peer and fails all future calls.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	addrs := make([]string, 0, len(t.peers))
	for addr := range t.peers {
		addrs = append(addrs, addr)
	}
	t.mu.Unlock()
	for _, addr := range addrs {
		t.Evict(addr)
	}
}

// pconn is one pooled connection: a single read loop dispatches
// responses to waiters by Seq; writers serialize on wmu only for the
// frame write itself.
type pconn struct {
	t    *Transport
	addr string
	c    net.Conn
	bw   *bufio.Writer

	// Codec negotiation state. codec is the version frames are written
	// in right now (starts at CodecJSON); maxCodec is what this side can
	// speak. While codec < maxCodec, outgoing frames advertise maxCodec
	// and the read loop upgrades codec when the server echoes it. Atomic
	// because writers read it while the read loop stores it.
	maxCodec uint8
	codec    atomic.Uint32

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint64]chan Message
	seq     uint64
	closed  bool
	err     error
}

// readLoop owns the connection's read side: it decodes frames (reusing
// one scratch buffer) and delivers each to the waiter registered under
// its Seq. Responses with no waiter — a request that already timed out —
// are dropped. Any read error fails the connection and every request
// still in flight on it.
func (p *pconn) readLoop() {
	br := bufio.NewReaderSize(p.c, connReadBufSize)
	// Responses outlive the loop iteration (they are handed to waiters),
	// so the decode state must not reuse record slices here.
	st := &decodeState{}
	for {
		m, err := readMessageInto(br, st)
		if err != nil {
			p.fail(fmt.Errorf("wire: connection to %s lost: %w", p.addr, err))
			return
		}
		// A response echoing our binary advertisement upgrades the
		// connection: every frame written after this point is binary.
		// The CAS makes the shift idempotent across echoed responses.
		if m.Codec >= CodecBinary && p.maxCodec >= CodecBinary &&
			p.codec.CompareAndSwap(uint32(CodecJSON), uint32(CodecBinary)) {
			p.t.m.codecShift(CodecJSON, CodecBinary)
		}
		p.mu.Lock()
		ch := p.waiters[m.Seq]
		delete(p.waiters, m.Seq)
		p.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// do sends one request and waits for its response. The returned duration
// covers write to response arrival: the wire round trip on an
// established connection.
func (p *pconn) do(req Message, timeout time.Duration) (Message, time.Duration, error) {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return Message{}, 0, err
	}
	p.seq++
	req.Seq = p.seq
	ch := make(chan Message, 1)
	p.waiters[req.Seq] = ch
	p.mu.Unlock()

	start := time.Now()
	p.wmu.Lock()
	_ = p.c.SetWriteDeadline(time.Now().Add(timeout))
	err := p.writeFrame(req)
	p.wmu.Unlock()
	if err != nil {
		p.forget(req.Seq)
		p.fail(fmt.Errorf("wire: write to %s: %w", p.addr, err))
		return Message{}, 0, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			p.mu.Lock()
			err := p.err
			p.mu.Unlock()
			return Message{}, 0, err
		}
		rtt := time.Since(start)
		if resp.Type == MsgError {
			return resp, rtt, permanent(fmt.Errorf("wire: remote error: %s", resp.Err))
		}
		if resp.Seq != req.Seq {
			return resp, rtt, permanent(fmt.Errorf("wire: response seq %d for request %d", resp.Seq, req.Seq))
		}
		return resp, rtt, nil
	case <-timer.C:
		p.forget(req.Seq)
		// A peer that is not answering cannot keep its connection: close
		// it so the pool redials instead of queueing onto a black hole.
		p.fail(fmt.Errorf("wire: %s: request timed out after %v", p.addr, timeout))
		return Message{}, 0, fmt.Errorf("wire: %s: request timed out after %v", p.addr, timeout)
	}
}

// writeFrame writes one frame under wmu in the connection's negotiated
// codec, advertising the upgrade while one is still possible. Flush
// happens per frame; the bufio layer still coalesces the encode into
// one syscall.
func (p *pconn) writeFrame(m Message) error {
	codec := uint8(p.codec.Load())
	if codec < p.maxCodec {
		m.Codec = p.maxCodec
	}
	return writeMessage(p.bw, m, codec)
}

// forget unregisters a waiter that gave up.
func (p *pconn) forget(seq uint64) {
	p.mu.Lock()
	delete(p.waiters, seq)
	p.mu.Unlock()
}

// fail closes the connection once, fails every in-flight request on it,
// and removes it from the pool.
func (p *pconn) fail(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.err = err
	waiters := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	_ = p.c.Close()
	for _, ch := range waiters {
		close(ch)
	}
	p.t.drop(p)
}
