package wire

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testPair starts a plain server and client node for transport tests.
func testPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	server, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return server, client
}

// metric reads one single-series family value from a node's registry.
func metric(t testing.TB, n *Node, name string) float64 {
	t.Helper()
	v, _ := n.Registry().Snapshot().Value(name)
	return v
}

// TestTransportReusesConnections: steady-state calls ride the pool
// instead of dialing — dials stay bounded by the pool size while reuse
// counts the rest.
func TestTransportReusesConnections(t *testing.T) {
	server, client := testPair(t)
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := client.ping(server.Addr(), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	dials := metric(t, client, "wire_conn_dials_total")
	reuse := metric(t, client, "wire_conn_reuse_total")
	if dials > float64(client.opt.poolSize) {
		t.Fatalf("%v dials for %d calls (pool size %d) — transport is not pooling", dials, calls, client.opt.poolSize)
	}
	if reuse < calls-float64(client.opt.poolSize) {
		t.Fatalf("only %v reuses for %d calls", reuse, calls)
	}
	if open := client.tr.Open(server.Addr()); open < 1 || open > client.opt.poolSize {
		t.Fatalf("pool holds %d conns, want 1..%d", open, client.opt.poolSize)
	}
	if v := metric(t, client, "wire_conns_open"); v != float64(client.tr.Open(server.Addr())) {
		t.Fatalf("wire_conns_open = %v, pool reports %d", v, client.tr.Open(server.Addr()))
	}
}

// TestTransportMultiplexesOneConnection: a pool of one connection still
// serves many concurrent in-flight requests — responses are matched by
// Seq, not by turn-taking on the socket.
func TestTransportMultiplexesOneConnection(t *testing.T) {
	server, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	exp := time.Now().Add(time.Hour).UnixMilli()
	const records = 32
	for i := 0; i < records; i++ {
		rec := Record{Addr: fmt.Sprintf("r%d:1", i), Number: uint64(i * 1000), ExpiresUnixMilli: exp}
		if err := Store(server.Addr(), rec, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, records)
	for i := 0; i < records; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs, err := client.query(server.Addr(), uint64(i*1000), 1, 2*time.Second)
			if err != nil {
				errc <- err
				return
			}
			if len(recs) != 1 || recs[0].Addr != fmt.Sprintf("r%d:1", i) {
				errc <- fmt.Errorf("query %d answered with %+v — response crossed to the wrong caller", i, recs)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if dials := metric(t, client, "wire_conn_dials_total"); dials != 1 {
		t.Fatalf("%v dials with pool size 1", dials)
	}
}

// TestBreakerOpenEvictsPool: when a peer's breaker opens, its pooled
// connections are torn down — stale connections to a crashed peer must
// not linger for the half-open probe to trip over.
func TestBreakerOpenEvictsPool(t *testing.T) {
	server, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}),
		WithBreaker(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	addr := server.Addr()

	if _, err := client.ping(addr, time.Second); err != nil {
		t.Fatal(err)
	}
	if client.tr.Open(addr) == 0 {
		t.Fatal("no pooled connection after a successful call")
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	// Two failed calls trip the threshold-2 breaker; the open transition
	// must evict whatever the pool still holds.
	for i := 0; i < 2; i++ {
		if _, err := client.ping(addr, 200*time.Millisecond); err == nil {
			t.Fatal("ping to closed server succeeded")
		}
	}
	if got := client.breakerFor(addr).snapshot(); got != breakerOpen {
		t.Fatalf("breaker state = %d, want open", got)
	}
	if open := client.tr.Open(addr); open != 0 {
		t.Fatalf("pool still holds %d conns to the dead peer", open)
	}
	// While open, calls fail fast without dialing.
	dials := metric(t, client, "wire_conn_dials_total")
	if _, err := client.ping(addr, time.Second); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("ping with open breaker = %v, want breaker-open", err)
	}
	if after := metric(t, client, "wire_conn_dials_total"); after != dials {
		t.Fatal("open breaker still dialed the dead peer")
	}
}

// TestTransportClosedRejectsCalls: a closed transport fails calls
// instead of dialing.
func TestTransportClosedRejectsCalls(t *testing.T) {
	server, client := testPair(t)
	if _, err := client.ping(server.Addr(), time.Second); err != nil {
		t.Fatal(err)
	}
	client.tr.Close()
	if _, err := client.tr.RoundTrip(server.Addr(), Message{Type: MsgPing}, time.Second); !errors.Is(err, errTransportClosed) {
		t.Fatalf("RoundTrip on closed transport = %v", err)
	}
	if open := client.tr.Open(server.Addr()); open != 0 {
		t.Fatalf("closed transport still holds %d conns", open)
	}
}

// TestTransportRaceHammer is the pooled transport's churn soak, meant
// for -race: concurrent RPCs from many goroutines multiplexed over a
// small pool, while a second peer crashes and restarts and its breaker
// trips and recovers. Every query response must belong to the request
// that asked (distinct Number → distinct record), no matter what the
// crashing peer does to the pool; afterwards the pool must hold no
// stale connection to the crashed peer — evicted, not retried forever.
func TestTransportRaceHammer(t *testing.T) {
	steady, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer steady.Close()
	flaky, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	flakyAddr := flaky.Addr()
	client, err := NewNode("127.0.0.1:0", stubCfg(), nil, time.Minute,
		WithPoolSize(2),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
		WithBreaker(3, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	exp := time.Now().Add(time.Hour).UnixMilli()
	const records = 16
	for i := 0; i < records; i++ {
		rec := Record{Addr: fmt.Sprintf("r%d:1", i), Number: uint64(i * 1000), ExpiresUnixMilli: exp}
		if err := Store(steady.Addr(), rec, time.Second); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var crossed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				want := (g*7 + i) % records
				recs, err := client.query(steady.Addr(), uint64(want*1000), 1, time.Second)
				if err != nil {
					continue // transient: pool churn from the flaky peer's failures
				}
				if len(recs) != 1 || recs[0].Addr != fmt.Sprintf("r%d:1", want) {
					crossed.Add(1)
					return
				}
				// Calls to the flaky peer fail and trip the breaker while
				// it is down; that must never corrupt the steady peer's
				// multiplexing above.
				_, _ = client.ping(flakyAddr, 50*time.Millisecond)
			}
		}(g)
	}

	// Crash and restart the flaky peer a few times mid-traffic.
	for round := 0; round < 3; round++ {
		time.Sleep(30 * time.Millisecond)
		if err := flaky.Close(); err != nil {
			t.Error(err)
		}
		time.Sleep(50 * time.Millisecond)
		flaky, err = NewNode(flakyAddr, stubCfg(), nil, time.Minute)
		if err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	// Final crash: leave it down.
	if err := flaky.Close(); err != nil {
		t.Error(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := crossed.Load(); n != 0 {
		t.Fatalf("%d responses delivered to the wrong request", n)
	}
	// The dead peer's connections must be gone once its failures settle:
	// either its breaker is open (evicting on the transition) or every
	// transport error already closed its conn.
	deadline := time.Now().Add(2 * time.Second)
	for client.tr.Open(flakyAddr) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still holds %d stale conns to the crashed peer", client.tr.Open(flakyAddr))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the steady peer kept its pool healthy throughout.
	if _, err := client.ping(steady.Addr(), time.Second); err != nil {
		t.Fatalf("steady peer unreachable after the storm: %v", err)
	}
}
