package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"
)

const testTimeout = 2 * time.Second

func testConfig(landmarks []string) SpaceConfig {
	return SpaceConfig{
		Landmarks:  landmarks,
		IndexDims:  3,
		BitsPerDim: 5,
		MaxRTTMs:   50,
	}
}

func TestSpaceConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SpaceConfig)
		ok     bool
	}{
		{"valid", func(c *SpaceConfig) {}, true},
		{"no-landmarks", func(c *SpaceConfig) { c.Landmarks = nil }, false},
		{"zero-dims", func(c *SpaceConfig) { c.IndexDims = 0 }, false},
		{"zero-bits", func(c *SpaceConfig) { c.BitsPerDim = 0 }, false},
		{"zero-rtt", func(c *SpaceConfig) { c.MaxRTTMs = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig([]string{"a", "b", "c"})
			tc.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := Message{
		Type:   MsgStore,
		Seq:    42,
		Record: &Record{Addr: "1.2.3.4:5", Vector: []float64{1, 2}, Number: 77, ExpiresUnixMilli: 9},
	}
	if err := WriteMessage(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || out.Record.Addr != in.Record.Addr ||
		out.Record.Number != 77 {
		t.Fatalf("round trip mangled message: %+v", out)
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("this is not json\n"))
	if _, err := ReadMessage(r); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRecordExpired(t *testing.T) {
	now := time.Now()
	live := Record{ExpiresUnixMilli: now.Add(time.Minute).UnixMilli()}
	dead := Record{ExpiresUnixMilli: now.Add(-time.Minute).UnixMilli()}
	if live.Expired(now) {
		t.Fatal("live record reported expired")
	}
	if !dead.Expired(now) {
		t.Fatal("dead record reported live")
	}
}

// cluster starts n nodes on ephemeral localhost ports, the first k of
// which double as landmarks, and returns them ready to talk. opts apply
// to every node.
func cluster(t *testing.T, n, k int, opts ...NodeOption) []*Node {
	t.Helper()
	// First pass: start listeners to learn addresses.
	boot := make([]*Node, n)
	addrs := make([]string, n)
	cfg := testConfig([]string{"placeholder"})
	for i := range boot {
		node, err := NewNode("127.0.0.1:0", cfg, nil, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		boot[i] = node
		addrs[i] = node.Addr()
	}
	// Second pass: restart with the real config (landmarks + peers).
	for _, nd := range boot {
		if err := nd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	real := testConfig(addrs[:k])
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(addrs[i], real, addrs, time.Minute, opts...)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { _ = node.Close() })
	}
	return nodes
}

func TestPingStoreQuery(t *testing.T) {
	nodes := cluster(t, 3, 1)
	rtt, err := Ping(nodes[0].Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
	rec := Record{
		Addr:             nodes[1].Addr(),
		Vector:           []float64{1, 2, 3},
		Number:           500,
		ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli(),
	}
	if err := Store(nodes[0].Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].RecordCount() != 1 {
		t.Fatal("record not stored")
	}
	got, err := Query(nodes[0].Addr(), 490, 5, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != rec.Addr {
		t.Fatalf("query returned %+v", got)
	}
}

func TestQueryOrdersByNumberDistance(t *testing.T) {
	nodes := cluster(t, 2, 1)
	exp := time.Now().Add(time.Minute).UnixMilli()
	for i, num := range []uint64{100, 200, 150, 1000} {
		rec := Record{Addr: nodes[1].Addr() + "/" + string(rune('a'+i)), Number: num, ExpiresUnixMilli: exp}
		if err := Store(nodes[0].Addr(), rec, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Query(nodes[0].Addr(), 160, 3, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Number != 150 || got[1].Number != 200 || got[2].Number != 100 {
		t.Fatalf("wrong order: %v %v %v", got[0].Number, got[1].Number, got[2].Number)
	}
}

func TestQuerySweepsExpired(t *testing.T) {
	nodes := cluster(t, 2, 1)
	rec := Record{Addr: "dead", Number: 5, ExpiresUnixMilli: time.Now().Add(-time.Second).UnixMilli()}
	if err := Store(nodes[0].Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	got, err := Query(nodes[0].Addr(), 5, 5, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expired record returned")
	}
	if nodes[0].RecordCount() != 0 {
		t.Fatal("expired record not swept")
	}
}

func TestMeasureVector(t *testing.T) {
	nodes := cluster(t, 4, 3)
	vec, err := nodes[3].MeasureVector(2, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 3 {
		t.Fatalf("vector len %d", len(vec))
	}
	for _, v := range vec {
		if v < 0 {
			t.Fatalf("negative RTT %v", v)
		}
	}
}

func TestMeasureVectorUnreachableLandmark(t *testing.T) {
	cfg := testConfig([]string{"127.0.0.1:1"}) // nothing listens on port 1
	node, err := NewNode("127.0.0.1:0", cfg, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.MeasureVector(1, 200*time.Millisecond); err == nil {
		t.Fatal("unreachable landmark did not error")
	}
}

func TestOwnerOfDeterministicAndCovering(t *testing.T) {
	nodes := cluster(t, 5, 2)
	n := nodes[0]
	curveMax := uint64(1)<<15 - 1 // 3 dims x 5 bits
	owners := map[string]bool{}
	for num := uint64(0); num <= curveMax; num += 97 {
		o1 := n.OwnerOf(num)
		o2 := n.OwnerOf(num)
		if o1 != o2 {
			t.Fatal("owner not deterministic")
		}
		owners[o1] = true
	}
	if len(owners) != 5 {
		t.Fatalf("only %d of 5 peers own slots", len(owners))
	}
	// All nodes agree on ownership.
	for num := uint64(0); num <= curveMax; num += 997 {
		want := nodes[0].OwnerOf(num)
		for _, other := range nodes[1:] {
			if other.OwnerOf(num) != want {
				t.Fatal("ownership disagreement")
			}
		}
	}
}

func TestPublishAndFindNearest(t *testing.T) {
	nodes := cluster(t, 6, 3)
	for _, nd := range nodes {
		if _, err := nd.Publish(1, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// Each publish writes the record to its replication-factor (default 2)
	// distinct ring owners.
	total := 0
	for _, nd := range nodes {
		total += nd.RecordCount()
	}
	if want := len(nodes) * nodes[0].Replication(); total != want {
		t.Fatalf("published %d records across the cluster, want %d", total, want)
	}
	addr, rtt, err := nodes[0].FindNearest(3, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || addr == nodes[0].Addr() {
		t.Fatalf("bad nearest: %q", addr)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestFindNearestSkipsDeadPeers(t *testing.T) {
	nodes := cluster(t, 5, 2)
	for _, nd := range nodes {
		if _, err := nd.Publish(1, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// Kill every node except 0 and 1; 0 should still find 1 (or error
	// gracefully if 1's record lives on a dead shard).
	for _, nd := range nodes[2:] {
		if err := nd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	addr, _, err := nodes[0].FindNearest(5, 300*time.Millisecond)
	if err != nil {
		t.Skip("records were sharded onto closed nodes; reactive failure is acceptable:", err)
	}
	if addr == nodes[0].Addr() {
		t.Fatal("found self")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", testConfig([]string{"x"}), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchUnknownType(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", testConfig([]string{"x"}), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	resp := node.dispatch(Message{Type: "bogus", Seq: 9}, nil)
	if resp.Type != MsgError || resp.Seq != 9 {
		t.Fatalf("dispatch = %+v", resp)
	}
	resp = node.dispatch(Message{Type: MsgStore, Seq: 1}, nil)
	if resp.Type != MsgError {
		t.Fatal("store without record accepted")
	}
}
