package wire

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

func TestRemoveMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := Message{Type: MsgRemove, Seq: 5, Addr: "1.2.3.4:5"}
	if err := WriteMessage(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgRemove || out.Seq != 5 || out.Addr != in.Addr {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestRemoveDeletesStoredRecord(t *testing.T) {
	nodes := cluster(t, 2, 1)
	rec := Record{
		Addr:             nodes[1].Addr(),
		Vector:           []float64{1, 2, 3},
		Number:           500,
		ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli(),
	}
	if err := Store(nodes[0].Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].RecordCount() != 1 {
		t.Fatal("record not stored")
	}
	if err := Remove(nodes[0].Addr(), rec.Addr, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].RecordCount() != 0 {
		t.Fatal("record survived remove")
	}
	// Removing an absent record is an acknowledged no-op, not an error —
	// withdrawals race with TTL expiry and must stay idempotent.
	if err := Remove(nodes[0].Addr(), rec.Addr, testTimeout); err != nil {
		t.Fatalf("second remove: %v", err)
	}
}

// TestWithdrawAfterPublish pins the graceful-drain path overlayd runs on
// SIGTERM: publish, then withdraw, and the record is gone from every
// owner instead of lingering until the TTL sweep.
func TestWithdrawAfterPublish(t *testing.T) {
	nodes := cluster(t, 4, 2)
	n := nodes[3]

	// A node that never published withdraws trivially.
	if acked, err := n.Withdraw(testTimeout); err != nil || acked != 0 {
		t.Fatalf("fresh withdraw = %d, %v", acked, err)
	}

	rec, err := n.Publish(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	owners := n.OwnersOf(rec.Number, 1)
	if len(owners) == 0 {
		t.Fatal("no owners")
	}
	recs, err := Query(owners[0], rec.Number, 10, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	present := false
	for _, r := range recs {
		if r.Addr == n.Addr() {
			present = true
		}
	}
	if !present {
		t.Fatal("published record not queryable")
	}

	acked, err := n.Withdraw(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if acked == 0 {
		t.Fatal("no owner acknowledged the withdrawal")
	}
	recs, err = Query(owners[0], rec.Number, 10, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Addr == n.Addr() {
			t.Fatal("withdrawn record still served")
		}
	}
}

// batchedPair starts a landmark/owner node and a client node whose
// publish batching window is effectively infinite, so tests control
// flush timing themselves (via Withdraw, Close, or an explicit Flush).
func batchedPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	boot, err := NewNode("127.0.0.1:0", testConfig([]string{"placeholder"}), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ownerAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig([]string{ownerAddr})
	owner, err := NewNode(ownerAddr, cfg, []string{ownerAddr}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = owner.Close() })
	client, err := NewNode("127.0.0.1:0", cfg, []string{ownerAddr}, time.Minute,
		WithBatchWindow(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return owner, client
}

// TestBatchPartialFailureReportsPerRecordErrors: a publish-batch frame
// where one record is storable and one is not must store the good record
// and report the rejection in the aligned per-record error slot — not
// fail the whole frame, not silently drop the bad record.
func TestBatchPartialFailureReportsPerRecordErrors(t *testing.T) {
	nodes := cluster(t, 2, 1)
	exp := time.Now().Add(time.Minute).UnixMilli()
	recs := []Record{
		{Addr: "good:1", Number: 42, ExpiresUnixMilli: exp},
		{Number: 43, ExpiresUnixMilli: exp}, // no addr: unstorable
	}
	errs, err := nodes[1].sendBatch(nodes[0].Addr(), recs, testTimeout)
	if err != nil {
		t.Fatalf("sendBatch failed outright: %v", err)
	}
	if len(errs) != len(recs) {
		t.Fatalf("got %d per-record errors for %d records", len(errs), len(recs))
	}
	if errs[0] != "" {
		t.Fatalf("storable record rejected: %q", errs[0])
	}
	if errs[1] == "" {
		t.Fatal("unstorable record not reported")
	}
	if got := nodes[0].RecordCount(); got != 1 {
		t.Fatalf("owner stores %d records, want 1", got)
	}

	// A fully-storable batch acks with no per-record errors at all.
	errs, err = nodes[1].sendBatch(nodes[0].Addr(), []Record{
		{Addr: "also-good:1", Number: 44, ExpiresUnixMilli: exp},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("clean batch returned errors: %v", errs)
	}
}

// TestWithdrawFlushesPendingBatch pins the drain ordering: a withdrawal
// must first flush the queued publishes (other records must not be
// silently dropped; the node's own queued record must not resurrect it
// after the remove), then delete this node's record from its owners.
func TestWithdrawFlushesPendingBatch(t *testing.T) {
	owner, client := batchedPair(t)
	if _, err := client.publishBatched(1, testTimeout); err != nil {
		t.Fatal(err)
	}
	if client.batch.Pending() == 0 {
		t.Fatal("publishBatched stored synchronously; nothing queued")
	}
	if got := owner.RecordCount(); got != 0 {
		t.Fatalf("owner stores %d records before any flush", got)
	}

	acked, err := client.Withdraw(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if acked == 0 {
		t.Fatal("no owner acknowledged the withdrawal")
	}
	if client.batch.Pending() != 0 {
		t.Fatal("withdraw left records queued")
	}
	// The flush did reach the owner (metered as stored batch records),
	// and the subsequent remove deleted the flushed record again.
	if v, _ := client.Registry().Snapshot().Value("wire_batch_records_total"); v < 1 {
		t.Fatalf("wire_batch_records_total = %v, batch never flushed", v)
	}
	if got := owner.RecordCount(); got != 0 {
		t.Fatalf("owner still stores %d records after withdraw", got)
	}
}

// TestCloseFlushesPendingBatch: Close drains the pending batch before
// tearing the transport down, so records queued just before shutdown
// reach their owners instead of vanishing with the process.
func TestCloseFlushesPendingBatch(t *testing.T) {
	owner, client := batchedPair(t)
	if _, err := client.publishBatched(1, testTimeout); err != nil {
		t.Fatal(err)
	}
	if client.batch.Pending() == 0 {
		t.Fatal("nothing queued")
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if got := owner.RecordCount(); got == 0 {
		t.Fatal("queued records lost on close")
	}
}

// TestBreakerSinkTransitions pins the detector feed: the sink fires
// exactly on open↔non-open transitions, not on every state change, so a
// core.SuspectMember wired through wire.WithBreakerSink sees one signal
// per outage, and one recovery.
func TestBreakerSinkTransitions(t *testing.T) {
	type event struct {
		peer string
		open bool
	}
	var events []event
	b := newBreaker(2, 50*time.Millisecond, nil)
	b.peer = "10.0.0.1:7"
	b.sink = func(peer string, open bool) { events = append(events, event{peer, open}) }
	now := time.Now()

	b.failure(now)
	if len(events) != 0 {
		t.Fatalf("sink fired below threshold: %v", events)
	}
	b.failure(now) // trips
	b.failure(now) // already open: no second event
	if len(events) != 1 || !events[0].open || events[0].peer != "10.0.0.1:7" {
		t.Fatalf("events after trip = %v", events)
	}

	// Half-open is not a recovery: the probe allowance must not fire the
	// sink until the probe actually succeeds.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("no half-open probe")
	}
	if len(events) != 2 || events[1].open {
		t.Fatalf("half-open transition not reported as recovery: %v", events)
	}
	// Failed probe re-opens: that IS a new outage signal.
	b.failure(later)
	if len(events) != 3 || !events[2].open {
		t.Fatalf("re-open not reported: %v", events)
	}
	// Successful probe after another cooldown closes for good. The
	// recovery was already reported at the half-open transition;
	// half-open → closed is non-open → non-open and stays silent.
	relater := later.Add(60 * time.Millisecond)
	if !b.allow(relater) {
		t.Fatal("no second probe")
	}
	if len(events) != 4 || events[3].open {
		t.Fatalf("events after second probe = %v", events)
	}
	b.success()
	if len(events) != 4 {
		t.Fatalf("closing fired a duplicate recovery: %v", events)
	}
}
