package wire

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

func TestRemoveMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := Message{Type: MsgRemove, Seq: 5, Addr: "1.2.3.4:5"}
	if err := WriteMessage(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgRemove || out.Seq != 5 || out.Addr != in.Addr {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestRemoveDeletesStoredRecord(t *testing.T) {
	nodes := cluster(t, 2, 1)
	rec := Record{
		Addr:             nodes[1].Addr(),
		Vector:           []float64{1, 2, 3},
		Number:           500,
		ExpiresUnixMilli: time.Now().Add(time.Minute).UnixMilli(),
	}
	if err := Store(nodes[0].Addr(), rec, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].RecordCount() != 1 {
		t.Fatal("record not stored")
	}
	if err := Remove(nodes[0].Addr(), rec.Addr, testTimeout); err != nil {
		t.Fatal(err)
	}
	if nodes[0].RecordCount() != 0 {
		t.Fatal("record survived remove")
	}
	// Removing an absent record is an acknowledged no-op, not an error —
	// withdrawals race with TTL expiry and must stay idempotent.
	if err := Remove(nodes[0].Addr(), rec.Addr, testTimeout); err != nil {
		t.Fatalf("second remove: %v", err)
	}
}

// TestWithdrawAfterPublish pins the graceful-drain path overlayd runs on
// SIGTERM: publish, then withdraw, and the record is gone from every
// owner instead of lingering until the TTL sweep.
func TestWithdrawAfterPublish(t *testing.T) {
	nodes := cluster(t, 4, 2)
	n := nodes[3]

	// A node that never published withdraws trivially.
	if acked, err := n.Withdraw(testTimeout); err != nil || acked != 0 {
		t.Fatalf("fresh withdraw = %d, %v", acked, err)
	}

	rec, err := n.Publish(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	owners := n.OwnersOf(rec.Number, 1)
	if len(owners) == 0 {
		t.Fatal("no owners")
	}
	recs, err := Query(owners[0], rec.Number, 10, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	present := false
	for _, r := range recs {
		if r.Addr == n.Addr() {
			present = true
		}
	}
	if !present {
		t.Fatal("published record not queryable")
	}

	acked, err := n.Withdraw(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if acked == 0 {
		t.Fatal("no owner acknowledged the withdrawal")
	}
	recs, err = Query(owners[0], rec.Number, 10, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Addr == n.Addr() {
			t.Fatal("withdrawn record still served")
		}
	}
}

// TestBreakerSinkTransitions pins the detector feed: the sink fires
// exactly on open↔non-open transitions, not on every state change, so a
// core.SuspectMember wired through wire.WithBreakerSink sees one signal
// per outage, and one recovery.
func TestBreakerSinkTransitions(t *testing.T) {
	type event struct {
		peer string
		open bool
	}
	var events []event
	b := newBreaker(2, 50*time.Millisecond, nil)
	b.peer = "10.0.0.1:7"
	b.sink = func(peer string, open bool) { events = append(events, event{peer, open}) }
	now := time.Now()

	b.failure(now)
	if len(events) != 0 {
		t.Fatalf("sink fired below threshold: %v", events)
	}
	b.failure(now) // trips
	b.failure(now) // already open: no second event
	if len(events) != 1 || !events[0].open || events[0].peer != "10.0.0.1:7" {
		t.Fatalf("events after trip = %v", events)
	}

	// Half-open is not a recovery: the probe allowance must not fire the
	// sink until the probe actually succeeds.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("no half-open probe")
	}
	if len(events) != 2 || events[1].open {
		t.Fatalf("half-open transition not reported as recovery: %v", events)
	}
	// Failed probe re-opens: that IS a new outage signal.
	b.failure(later)
	if len(events) != 3 || !events[2].open {
		t.Fatalf("re-open not reported: %v", events)
	}
	// Successful probe after another cooldown closes for good. The
	// recovery was already reported at the half-open transition;
	// half-open → closed is non-open → non-open and stays silent.
	relater := later.Add(60 * time.Millisecond)
	if !b.allow(relater) {
		t.Fatal("no second probe")
	}
	if len(events) != 4 || events[3].open {
		t.Fatalf("events after second probe = %v", events)
	}
	b.success()
	if len(events) != 4 {
		t.Fatalf("closing fired a duplicate recovery: %v", events)
	}
}
