#!/bin/sh
# mon_smoke.sh — boots a 3-node overlayd cluster with tracing on (two
# landmark servers brought up first, then a publisher with a refresh
# loop), scrapes the cluster once with overlaymon -json, and asserts the
# snapshot is well-formed: all nodes healthy, replicated records stored,
# and at least one trace stitched across nodes. Exits non-zero on any
# failure. Invoked by `make mon-smoke`.
set -eu

BIN=$(mktemp -d)
LOGDIR=$(mktemp -d)
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$BIN" "$LOGDIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/overlayd" ./cmd/overlayd
go build -o "$BIN/overlaymon" ./cmd/overlaymon

# Fixed localhost ports; the nodes fail fast if one is taken.
N1=127.0.0.1:7471; M1=127.0.0.1:7481
N2=127.0.0.1:7472; M2=127.0.0.1:7482
N3=127.0.0.1:7473; M3=127.0.0.1:7483
PEERS="$N1,$N2,$N3"
LANDMARKS="$N1,$N2"

wait_healthy() {
    tries=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        tries=$((tries + 1))
        if [ "$tries" -gt 50 ]; then
            echo "mon-smoke: $1 never became healthy" >&2
            cat "$LOGDIR"/node*.log >&2
            exit 1
        fi
        sleep 0.2
    done
}

# Landmark servers first — the publisher can only measure its vector
# once both are answering pings.
"$BIN/overlayd" -listen "$N1" -peers "$PEERS" -landmarks "$LANDMARKS" \
    -metrics "$M1" -replicas 2 -trace-sample 1 >"$LOGDIR/node1.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$M1"
"$BIN/overlayd" -listen "$N2" -peers "$PEERS" -landmarks "$LANDMARKS" \
    -metrics "$M2" -replicas 2 -trace-sample 1 >"$LOGDIR/node2.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$M2"

# The publisher: traced replicated publish plus a refresh loop, so the
# cluster keeps producing traces while we scrape.
"$BIN/overlayd" -listen "$N3" -peers "$PEERS" -landmarks "$LANDMARKS" \
    -metrics "$M3" -replicas 2 -trace-sample 1 -slow-ms 500 \
    -publish -refresh 500ms >"$LOGDIR/node3.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$M3"
sleep 1 # let the publish and at least one refresh land

SNAP="$LOGDIR/snapshot.json"
"$BIN/overlaymon" -nodes "$M1,$M2,$M3" -json >"$SNAP"

# Assert the snapshot is well-formed: valid JSON, every node healthy,
# the replicated record present, and a stitched publish trace.
python3 - "$SNAP" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    v = json.load(f)
assert v["healthy"] == 3, f"healthy={v['healthy']}"
assert v["unreachable"] == 0, f"unreachable={v['unreachable']}"
assert v["total_records"] >= 2, f"total_records={v['total_records']} (want both replicas)"
assert v["coverage_nodes"] >= 1, f"coverage_nodes={v['coverage_nodes']}"
assert v["traced_nodes"] == 3, f"traced_nodes={v['traced_nodes']}"
traces = v["slowest_traces"]
assert traces, "no stitched traces in snapshot"
assert all(t["trace_id"] and t["root_op"] for t in traces), traces
pub = [t for t in traces if t["root_op"] == "publish"]
assert pub, f"no publish trace stitched: {[t['root_op'] for t in traces]}"
assert any(s["op"] == "serve.store" for t in pub for s in t["spans"]), \
    "publish traces carry no cross-node serve.store spans"
assert all(t["orphans"] == 0 for t in pub), "publish trace has orphan spans"
rpc = {r["type"] for r in v["rpc"]}
assert "store" in rpc, f"rpc types: {rpc}"
print(f"mon-smoke: OK — {v['healthy']} nodes, {int(v['total_records'])} records, "
      f"{len(traces)} traces, rpc types {sorted(rpc)}")
EOF
